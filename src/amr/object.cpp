#include "amr/object.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace dfamr::amr {

namespace {

/// Axis a hemispheroid is cut along: 0/1/2 for x/y/z; +1 keeps p[axis] >= c,
/// -1 keeps p[axis] <= c. Returns false if `t` is not a hemispheroid.
bool hemi_params(ObjectType t, int& axis, int& sign) {
    const int code = static_cast<int>(t);
    if (code < 4 || code > 15) return false;
    const int idx = (code - 4) / 2;  // 0..5 → +x,-x,+y,-y,+z,-z
    axis = idx / 2;
    sign = (idx % 2 == 0) ? +1 : -1;
    return true;
}

bool cylinder_axis(ObjectType t, int& axis) {
    const int code = static_cast<int>(t);
    if (code < 16 || code > 21) return false;
    axis = (code - 16) / 2;
    return true;
}

/// Squared normalized distance from the ellipsoid center to the closest
/// point of `block`, where each axis is scaled by the object semi-size.
/// <= 1 means the block intersects the full ellipsoid.
double ellipsoid_box_distance2(const Vec3d& center, const Vec3d& size, const Box& block) {
    double d2 = 0;
    for (int a = 0; a < 3; ++a) {
        const double clamped = std::clamp(center[a], block.lo[a], block.hi[a]);
        const double n = (center[a] - clamped) / size[a];
        d2 += n * n;
    }
    return d2;
}

bool point_in_ellipsoid(const Vec3d& center, const Vec3d& size, const Vec3d& p) {
    double d2 = 0;
    for (int a = 0; a < 3; ++a) {
        const double n = (p[a] - center[a]) / size[a];
        d2 += n * n;
    }
    return d2 <= 1.0;
}

/// Squared normalized 2D distance in the plane orthogonal to `axis`.
double ellipse_box_distance2(const Vec3d& center, const Vec3d& size, const Box& block, int axis) {
    double d2 = 0;
    for (int a = 0; a < 3; ++a) {
        if (a == axis) continue;
        const double clamped = std::clamp(center[a], block.lo[a], block.hi[a]);
        const double n = (center[a] - clamped) / size[a];
        d2 += n * n;
    }
    return d2;
}

bool point_in_ellipse(const Vec3d& center, const Vec3d& size, const Vec3d& p, int axis) {
    double d2 = 0;
    for (int a = 0; a < 3; ++a) {
        if (a == axis) continue;
        const double n = (p[a] - center[a]) / size[a];
        d2 += n * n;
    }
    return d2 <= 1.0;
}

}  // namespace

std::string to_string(ObjectType t) {
    switch (t) {
        case ObjectType::RectangleSurface: return "rectangle";
        case ObjectType::RectangleSolid: return "solid rectangle";
        case ObjectType::SpheroidSurface: return "spheroid";
        case ObjectType::SpheroidSolid: return "solid spheroid";
        case ObjectType::HemispheroidPlusXSurface: return "hemispheroid +x";
        case ObjectType::HemispheroidPlusXSolid: return "solid hemispheroid +x";
        case ObjectType::HemispheroidMinusXSurface: return "hemispheroid -x";
        case ObjectType::HemispheroidMinusXSolid: return "solid hemispheroid -x";
        case ObjectType::HemispheroidPlusYSurface: return "hemispheroid +y";
        case ObjectType::HemispheroidPlusYSolid: return "solid hemispheroid +y";
        case ObjectType::HemispheroidMinusYSurface: return "hemispheroid -y";
        case ObjectType::HemispheroidMinusYSolid: return "solid hemispheroid -y";
        case ObjectType::HemispheroidPlusZSurface: return "hemispheroid +z";
        case ObjectType::HemispheroidPlusZSolid: return "solid hemispheroid +z";
        case ObjectType::HemispheroidMinusZSurface: return "hemispheroid -z";
        case ObjectType::HemispheroidMinusZSolid: return "solid hemispheroid -z";
        case ObjectType::CylinderXSurface: return "cylinder x";
        case ObjectType::CylinderXSolid: return "solid cylinder x";
        case ObjectType::CylinderYSurface: return "cylinder y";
        case ObjectType::CylinderYSolid: return "solid cylinder y";
        case ObjectType::CylinderZSurface: return "cylinder z";
        case ObjectType::CylinderZSolid: return "solid cylinder z";
    }
    return "unknown";
}

void ObjectSpec::step() {
    center = center + move;
    size = size + inc;
    if (bounce) {
        for (int a = 0; a < 3; ++a) {
            if (center[a] - size[a] < 0.0 && move[a] < 0.0) move[a] = -move[a];
            if (center[a] + size[a] > 1.0 && move[a] > 0.0) move[a] = -move[a];
        }
    }
}

Box ObjectSpec::bounding_box() const {
    Box bb{center - size, center + size};
    int axis = 0, sign = 0;
    if (hemi_params(type, axis, sign)) {
        if (sign > 0) {
            bb.lo[axis] = center[axis];
        } else {
            bb.hi[axis] = center[axis];
        }
    }
    return bb;
}

bool ObjectSpec::volume_intersects(const Box& block) const {
    DFAMR_REQUIRE(size.x > 0 && size.y > 0 && size.z > 0, "object has non-positive size");
    int axis = 0, sign = 0;
    switch (type) {
        case ObjectType::RectangleSurface:
        case ObjectType::RectangleSolid:
            return block.intersects(Box{center - size, center + size});
        case ObjectType::SpheroidSurface:
        case ObjectType::SpheroidSolid:
            return ellipsoid_box_distance2(center, size, block) <= 1.0;
        default:
            break;
    }
    if (hemi_params(type, axis, sign)) {
        // Clip the block to the hemispheroid's half-space; the clipped box
        // intersects the volume iff it intersects the full ellipsoid.
        Box clipped = block;
        if (sign > 0) {
            clipped.lo[axis] = std::max(clipped.lo[axis], center[axis]);
        } else {
            clipped.hi[axis] = std::min(clipped.hi[axis], center[axis]);
        }
        if (clipped.lo[axis] > clipped.hi[axis]) return false;
        return ellipsoid_box_distance2(center, size, clipped) <= 1.0;
    }
    if (cylinder_axis(type, axis)) {
        if (block.hi[axis] < center[axis] - size[axis] ||
            block.lo[axis] > center[axis] + size[axis]) {
            return false;
        }
        return ellipse_box_distance2(center, size, block, axis) <= 1.0;
    }
    throw Error("unhandled object type");
}

bool ObjectSpec::volume_contains(const Box& block) const {
    int axis = 0, sign = 0;
    switch (type) {
        case ObjectType::RectangleSurface:
        case ObjectType::RectangleSolid:
            return Box{center - size, center + size}.contains(block);
        case ObjectType::SpheroidSurface:
        case ObjectType::SpheroidSolid: {
            // Ellipsoids are convex: the box is inside iff all corners are.
            for (const Vec3d& p : corners(block)) {
                if (!point_in_ellipsoid(center, size, p)) return false;
            }
            return true;
        }
        default:
            break;
    }
    if (hemi_params(type, axis, sign)) {
        const bool in_half = (sign > 0) ? (block.lo[axis] >= center[axis])
                                        : (block.hi[axis] <= center[axis]);
        if (!in_half) return false;
        for (const Vec3d& p : corners(block)) {
            if (!point_in_ellipsoid(center, size, p)) return false;
        }
        return true;
    }
    if (cylinder_axis(type, axis)) {
        if (block.lo[axis] < center[axis] - size[axis] ||
            block.hi[axis] > center[axis] + size[axis]) {
            return false;
        }
        for (const Vec3d& p : corners(block)) {
            if (!point_in_ellipse(center, size, p, axis)) return false;
        }
        return true;
    }
    throw Error("unhandled object type");
}

bool ObjectSpec::touches(const Box& block) const {
    if (is_solid()) return volume_intersects(block);
    return volume_intersects(block) && !volume_contains(block);
}

}  // namespace dfamr::amr
