// Execution tracing — the Extrae/Paraver substitute used to regenerate the
// paper's Figures 1-3 quantitatively: per-core timelines of typed intervals,
// dumped as CSV, plus an analysis pass computing per-phase totals, phase
// overlap, and idle gaps.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace dfamr::amr {

/// What a traced interval was doing (the "task colors" of Fig. 1/3).
enum class PhaseKind : std::uint8_t {
    Stencil,
    Pack,
    Send,
    Recv,
    Unpack,
    IntraCopy,
    ChecksumLocal,
    ChecksumReduce,
    RefineSplit,
    RefineMerge,
    RefineExchange,
    LoadBalance,
    CommWait,  // MPI_Waitany / Waitall time in the MPI-only variant
    Control,
    Retry,        // backoff/resend of a transiently failed message (resilience)
    NetProgress,  // TCP transport progress-thread time (frame reassembly/dispatch)
};

std::string to_string(PhaseKind k);
/// True for intervals belonging to the refinement/load-balancing phase.
bool is_refine_phase(PhaseKind k);

struct TraceEvent {
    int rank = 0;
    int worker = 0;  // core within the rank (0 for MPI-only)
    std::int64_t t0_ns = 0;
    std::int64_t t1_ns = 0;
    PhaseKind kind = PhaseKind::Control;
};

/// Aggregated view of a trace (the numbers the paper reads off Paraver).
struct TraceAnalysis {
    std::int64_t span_ns = 0;  // last end - first start
    std::map<PhaseKind, std::int64_t> busy_ns_by_kind;
    std::int64_t busy_ns = 0;               // total across cores
    double utilization = 0;                 // busy / (span * cores)
    std::int64_t overlap_ns = 0;            // time where >= 2 distinct kinds run
    std::int64_t largest_idle_gap_ns = 0;   // longest all-cores-idle interval
    std::int64_t refine_span_ns = 0;        // time covered by refinement-kind events
    int cores = 0;
};

/// Thread-safe event sink. Disabled by default (record() is a no-op) so the
/// scaling benches pay nothing; enable for the trace experiments.
class Tracer {
public:
    void enable(bool on) { enabled_ = on; }
    bool enabled() const { return enabled_; }

    void record(int rank, int worker, std::int64_t t0_ns, std::int64_t t1_ns, PhaseKind kind);

    std::vector<TraceEvent> sorted_events() const;
    TraceAnalysis analyze() const;
    /// CSV: rank,worker,start_ns,end_ns,kind
    std::string to_csv() const;
    void clear();

private:
    bool enabled_ = false;
    mutable std::mutex mutex_;
    std::vector<TraceEvent> events_;
};

}  // namespace dfamr::amr
