// Execution tracing — the Extrae/Paraver substitute used to regenerate the
// paper's Figures 1-3 quantitatively: per-core timelines of typed intervals
// plus interleaved counter samples, exported as CSV or Chrome-trace/Perfetto
// JSON, with an analysis pass computing per-phase totals, phase overlap, and
// idle gaps.
//
// Recording is designed to be cheap enough to leave on: record() appends to
// a per-thread chunked log and takes NO shared lock on the hot path (the
// only synchronized operations are first-touch registration of a thread and
// allocation of a fresh chunk, both O(events / 4096)). Merging happens at
// export/analysis time. clear() and destruction must not race record() —
// quiesce recorders first (all call sites read the trace after the run).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/lockdep.hpp"

namespace dfamr::amr {

/// What a traced interval was doing (the "task colors" of Fig. 1/3).
enum class PhaseKind : std::uint8_t {
    Stencil,
    Pack,
    Send,
    Recv,
    Unpack,
    IntraCopy,
    ChecksumLocal,
    ChecksumReduce,
    RefineSplit,
    RefineMerge,
    RefineExchange,
    LoadBalance,
    CommWait,  // MPI_Waitany / Waitall time in the MPI-only variant
    Control,
    Retry,        // backoff/resend of a transiently failed message (resilience)
    NetProgress,  // TCP transport progress-thread time (frame reassembly/dispatch)
};

std::string to_string(PhaseKind k);
/// True for intervals belonging to the refinement/load-balancing phase.
bool is_refine_phase(PhaseKind k);

/// Worker id for transport progress threads: a dedicated lane per rank,
/// shown in timelines but excluded from the utilization denominator (the
/// progress thread is not a compute core; counting it understates how busy
/// the actual workers are).
inline constexpr int kProgressWorker = -1;

struct TraceEvent {
    int rank = 0;
    int worker = 0;  // core within the rank (0 = main thread; kProgressWorker)
    std::int64_t t0_ns = 0;
    std::int64_t t1_ns = 0;
    PhaseKind kind = PhaseKind::Control;
};

/// A sampled counter value (scheduler telemetry at phase boundaries),
/// interleaved with the intervals in the Chrome-trace export. `name` must
/// point at storage outliving the tracer (string literals in practice).
struct CounterSample {
    int rank = 0;
    std::int64_t t_ns = 0;
    const char* name = "";
    double value = 0;
};

/// Aggregated view of a trace (the numbers the paper reads off Paraver).
struct TraceAnalysis {
    std::int64_t span_ns = 0;  // last end - first start, all lanes
    std::map<PhaseKind, std::int64_t> busy_ns_by_kind;  // all lanes
    std::int64_t busy_ns = 0;      // total across compute cores
    std::int64_t progress_ns = 0;  // total across progress lanes
    double utilization = 0;        // busy / (span * cores), compute cores only
    std::int64_t overlap_ns = 0;   // time where >= 2 distinct kinds run (compute)
    std::int64_t largest_idle_gap_ns = 0;  // longest all-compute-cores-idle interval
    std::int64_t refine_span_ns = 0;       // time covered by refinement-kind events
    int cores = 0;           // distinct (rank, worker) compute lanes
    int progress_lanes = 0;  // distinct (rank, kProgressWorker) lanes
    std::uint64_t events = 0;  // recorded intervals, all lanes
};

/// Thread-safe event sink. Disabled by default (record() is a no-op) so the
/// scaling benches pay nothing; enable for the trace experiments.
class Tracer {
public:
    Tracer();
    ~Tracer();
    Tracer(const Tracer&) = delete;
    Tracer& operator=(const Tracer&) = delete;

    void enable(bool on) { enabled_.store(on, std::memory_order_relaxed); }
    bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

    /// Hot path: appends to the calling thread's chunk list, no shared lock.
    void record(int rank, int worker, std::int64_t t0_ns, std::int64_t t1_ns, PhaseKind kind);
    /// Cold path (phase boundaries): records one counter sample.
    void record_counter(int rank, std::int64_t t_ns, const char* name, double value);

    /// Merged events in deterministic order: (t0, rank, worker, t1, kind).
    std::vector<TraceEvent> sorted_events() const;
    /// Counter samples ordered by (t, rank, name).
    std::vector<CounterSample> sorted_counters() const;
    TraceAnalysis analyze() const;
    /// CSV: rank,worker,start_ns,end_ns,kind
    std::string to_csv() const;
    /// Chrome-trace / Perfetto JSON: one track per (rank, worker) with phase
    /// kinds as categories, counter samples as counter tracks. Loadable in
    /// chrome://tracing and ui.perfetto.dev.
    std::string to_chrome_json() const;
    void clear();

private:
    static constexpr std::size_t kChunkEvents = 4096;
    struct Chunk {
        std::atomic<std::uint32_t> count{0};
        std::array<TraceEvent, kChunkEvents> events;
    };
    /// One appender's log. `tail` is touched only by the owning thread; the
    /// chunk list structure is guarded by mutex_ (readers + chunk growth).
    struct ThreadLog {
        std::thread::id owner;
        std::vector<std::unique_ptr<Chunk>> chunks;
        Chunk* tail = nullptr;
    };

    ThreadLog* attach_thread_log();
    Chunk* grow(ThreadLog& log);
    std::vector<TraceEvent> snapshot_events() const;

    std::atomic<bool> enabled_{false};
    /// Process-unique id for the thread-local fast-path cache (never reused,
    /// so a cache entry can't accidentally match a new Tracer at the same
    /// address). epoch_ invalidates caches on clear().
    const std::uint64_t uid_;
    std::atomic<std::uint64_t> epoch_{1};

    mutable lockdep::Mutex mutex_{"trace.tracer"};
    std::vector<std::unique_ptr<ThreadLog>> logs_;
    std::vector<CounterSample> counters_;
};

}  // namespace dfamr::amr
