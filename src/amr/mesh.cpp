#include "amr/mesh.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace dfamr::amr {

Mesh::Mesh(const Config& cfg, int rank)
    : cfg_(cfg), rank_(rank), shape_{cfg.nx, cfg.ny, cfg.nz, cfg.num_vars}, structure_(cfg) {
    DFAMR_REQUIRE(rank >= 0 && rank < cfg.num_ranks(), "rank out of range");
}

void Mesh::init_blocks() {
    blocks_.clear();
    for (const BlockKey& key : structure_.blocks_of(rank_)) {
        auto b = std::make_unique<Block>(key, shape_);
        b->init_cells(structure_.box(key), cfg_.seed);
        blocks_.emplace(key, std::move(b));
    }
}

Block& Mesh::block(const BlockKey& key) {
    auto it = blocks_.find(key);
    DFAMR_REQUIRE(it != blocks_.end(), "rank does not own the requested block");
    return *it->second;
}

const Block& Mesh::block(const BlockKey& key) const {
    auto it = blocks_.find(key);
    DFAMR_REQUIRE(it != blocks_.end(), "rank does not own the requested block");
    return *it->second;
}

std::vector<BlockKey> Mesh::owned_keys() const {
    std::vector<BlockKey> keys;
    keys.reserve(blocks_.size());
    for (const auto& [key, block_ptr] : blocks_) keys.push_back(key);
    return keys;
}

void Mesh::adopt(std::unique_ptr<Block> b) {
    DFAMR_REQUIRE(b != nullptr, "cannot adopt a null block");
    const BlockKey key = b->key();
    DFAMR_REQUIRE(blocks_.count(key) == 0, "adopting a block the rank already owns");
    blocks_.emplace(key, std::move(b));
}

std::unique_ptr<Block> Mesh::release(const BlockKey& key) {
    auto it = blocks_.find(key);
    DFAMR_REQUIRE(it != blocks_.end(), "releasing a block the rank does not own");
    std::unique_ptr<Block> b = std::move(it->second);
    blocks_.erase(it);
    return b;
}

std::unique_ptr<Block> Mesh::make_block(const BlockKey& key) const {
    return std::make_unique<Block>(key, shape_);
}

void Mesh::split_block(const BlockKey& parent) {
    std::unique_ptr<Block> parent_block = release(parent);
    for (int octant = 0; octant < 8; ++octant) {
        const BlockKey child_key = parent.child(octant, structure_.max_level());
        auto child = std::make_unique<Block>(child_key, shape_);
        child->fill_from_parent(*parent_block, octant);
        blocks_.emplace(child_key, std::move(child));
    }
}

void Mesh::merge_children(const BlockKey& parent) {
    auto merged = std::make_unique<Block>(parent, shape_);
    for (int octant = 0; octant < 8; ++octant) {
        const BlockKey child_key = parent.child(octant, structure_.max_level());
        std::unique_ptr<Block> child = release(child_key);
        merged->absorb_child(*child, octant);
    }
    blocks_.emplace(parent, std::move(merged));
}

double Mesh::local_checksum(int var_begin, int var_end) const {
    double sum = 0;
    for (const auto& [key, block_ptr] : blocks_) {
        sum += block_ptr->checksum(var_begin, var_end);
    }
    return sum;
}

std::int64_t Mesh::flops_per_var_sweep() const {
    return static_cast<std::int64_t>(blocks_.size()) * 7 * cfg_.cells_interior();
}

CommBuffers::CommBuffers(const CommPlan& plan, int group_vars, bool separate_buffers)
    : separate_(separate_buffers) {
    std::size_t max_send = 0, max_recv = 0;
    for (int d = 0; d < 3; ++d) {
        DirStorage& dir = dirs_[static_cast<std::size_t>(d)];
        std::size_t send_total = 0, recv_total = 0;
        for (const NeighborExchange& ex : plan.direction(d).neighbors) {
            dir.send_offsets.push_back(send_total);
            dir.recv_offsets.push_back(recv_total);
            dir.send_sizes.push_back(static_cast<std::size_t>(ex.send_values) *
                                     static_cast<std::size_t>(group_vars));
            dir.recv_sizes.push_back(static_cast<std::size_t>(ex.recv_values) *
                                     static_cast<std::size_t>(group_vars));
            send_total += dir.send_sizes.back();
            recv_total += dir.recv_sizes.back();
        }
        if (separate_) {
            dir.send.resize(send_total);
            dir.recv.resize(recv_total);
        }
        max_send = std::max(max_send, send_total);
        max_recv = std::max(max_recv, recv_total);
    }
    if (!separate_) {
        // One buffer pair shared by all directions — the reference layout
        // whose aliasing creates the false inter-direction dependencies the
        // paper's --separate_buffers removes.
        dirs_[0].send.resize(max_send);
        dirs_[0].recv.resize(max_recv);
    }
}

std::span<double> CommBuffers::send_stream(int direction, int neighbor_index) {
    DirStorage& layout = dirs_[static_cast<std::size_t>(direction)];
    DirStorage& storage = dirs_[static_cast<std::size_t>(storage_index(direction))];
    const auto i = static_cast<std::size_t>(neighbor_index);
    return {storage.send.data() + layout.send_offsets[i], layout.send_sizes[i]};
}

std::span<double> CommBuffers::recv_stream(int direction, int neighbor_index) {
    DirStorage& layout = dirs_[static_cast<std::size_t>(direction)];
    DirStorage& storage = dirs_[static_cast<std::size_t>(storage_index(direction))];
    const auto i = static_cast<std::size_t>(neighbor_index);
    return {storage.recv.data() + layout.recv_offsets[i], layout.recv_sizes[i]};
}

}  // namespace dfamr::amr
