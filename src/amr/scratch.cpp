#include "amr/scratch.hpp"

#include <atomic>
#include <cstdint>

namespace dfamr::amr {

namespace {

std::atomic<std::uint64_t> g_scratch_generation{0};

struct ScratchSlot {
    std::uint64_t generation = 0;
    std::vector<double> buf;
};

thread_local ScratchSlot t_scratch;

}  // namespace

std::vector<double>& tls_scratch(std::size_t min_size) {
    const std::uint64_t gen = g_scratch_generation.load(std::memory_order_acquire);
    if (t_scratch.generation != gen) {
        t_scratch.buf.clear();
        t_scratch.buf.shrink_to_fit();
        t_scratch.generation = gen;
    }
    if (t_scratch.buf.size() < min_size) t_scratch.buf.resize(min_size);
    return t_scratch.buf;
}

void retire_tls_scratch() { g_scratch_generation.fetch_add(1, std::memory_order_acq_rel); }

}  // namespace dfamr::amr
