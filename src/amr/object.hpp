// miniAMR input objects: the moving shapes whose boundaries drive mesh
// refinement. The mesh is the unit cube [0,1]^3; objects have a center,
// per-axis semi-sizes, a movement rate per timestep, a growth rate per
// timestep, and may bounce off the domain boundary.
//
// Types follow the mini-app's scheme: even codes are surfaces (a block is
// "touched" when the object's *boundary* crosses it), odd codes are solids
// (touched when the block intersects the object's volume).
#pragma once

#include <cstdint>
#include <string>

#include "common/geometry.hpp"

namespace dfamr::amr {

enum class ObjectType : int {
    RectangleSurface = 0,
    RectangleSolid = 1,
    SpheroidSurface = 2,
    SpheroidSolid = 3,
    HemispheroidPlusXSurface = 4,
    HemispheroidPlusXSolid = 5,
    HemispheroidMinusXSurface = 6,
    HemispheroidMinusXSolid = 7,
    HemispheroidPlusYSurface = 8,
    HemispheroidPlusYSolid = 9,
    HemispheroidMinusYSurface = 10,
    HemispheroidMinusYSolid = 11,
    HemispheroidPlusZSurface = 12,
    HemispheroidPlusZSolid = 13,
    HemispheroidMinusZSurface = 14,
    HemispheroidMinusZSolid = 15,
    // Extensions beyond the 16 core types (the paper mentions cylinders):
    CylinderXSurface = 16,
    CylinderXSolid = 17,
    CylinderYSurface = 18,
    CylinderYSolid = 19,
    CylinderZSurface = 20,
    CylinderZSolid = 21,
};

std::string to_string(ObjectType t);

struct ObjectSpec {
    ObjectType type = ObjectType::SpheroidSurface;
    bool bounce = false;   // reflect the movement rate at domain boundaries
    Vec3d center{0.5, 0.5, 0.5};
    Vec3d move{0, 0, 0};   // center displacement per timestep
    Vec3d size{0.1, 0.1, 0.1};  // semi-sizes per axis
    Vec3d inc{0, 0, 0};    // size growth per timestep

    bool is_solid() const { return (static_cast<int>(type) & 1) != 0; }

    /// Advances the object by one timestep (movement, growth, bounce).
    void step();

    /// True when a refinement check on `block` must mark it: the block
    /// intersects the volume (solid types) or the boundary (surface types).
    bool touches(const Box& block) const;

    /// Volume predicates used by touches() and by tests.
    bool volume_intersects(const Box& block) const;
    bool volume_contains(const Box& block) const;

    /// Object's own bounding box (for tests and pruning).
    Box bounding_box() const;
};

}  // namespace dfamr::amr
