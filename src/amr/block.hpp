// Mesh blocks: identity (BlockKey), cell storage, face pack/unpack with
// inter-level restriction/prolongation, refinement data operations, the
// stencils, and per-block checksums.
//
// Every block has the same cell count (nx × ny × nz) regardless of its
// refinement level — finer blocks simply cover a smaller physical region at
// higher resolution (the defining property of miniAMR's octree scheme).
// Storage follows Rico et al.: one contiguous array per block holding all
// variables, with a one-cell ghost shell per variable
// (layout [var][x][y][z], z contiguous).
#pragma once

#include <array>
#include <compare>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/geometry.hpp"

namespace dfamr::amr {

/// Identity of a block in the global octree forest: refinement level plus
/// the lower corner ("anchor") measured in finest-level block units.
/// A level-l block spans 2^(max_level - l) units per dimension.
struct BlockKey {
    int level = 0;
    Vec3l anchor{0, 0, 0};

    friend bool operator==(const BlockKey&, const BlockKey&) = default;
    friend auto operator<=>(const BlockKey& a, const BlockKey& b) {
        if (auto c = a.level <=> b.level; c != 0) return c;
        if (auto c = a.anchor.x <=> b.anchor.x; c != 0) return c;
        if (auto c = a.anchor.y <=> b.anchor.y; c != 0) return c;
        return a.anchor.z <=> b.anchor.z;
    }

    /// Child in octant o (bit0 = x-half, bit1 = y-half, bit2 = z-half).
    BlockKey child(int octant, int max_level) const;
    BlockKey parent(int max_level) const;
    int octant_in_parent(int max_level) const;
    /// Side length in finest units.
    std::int64_t side(int max_level) const { return std::int64_t{1} << (max_level - level); }
};

/// How a face neighbor's refinement level relates to mine.
enum class FaceRel : std::uint8_t { Same, Coarser, Finer };

/// Geometry of one block-face transfer. `quad` identifies which quarter of
/// the coarser face is involved when levels differ (0..3; u-half in bit 0,
/// v-half in bit 1, where (u,v) are the in-plane axes in ascending order).
struct FaceGeom {
    int axis = 0;    // 0=x, 1=y, 2=z
    int sense = +1;  // +1: my high face, -1: my low face
    FaceRel rel = FaceRel::Same;
    int quad = 0;
};

/// Fixed per-run block shape parameters.
struct BlockShape {
    int nx = 0, ny = 0, nz = 0;
    int num_vars = 0;

    std::int64_t stride_z() const { return 1; }
    std::int64_t stride_y() const { return nz + 2; }
    std::int64_t stride_x() const { return static_cast<std::int64_t>(ny + 2) * (nz + 2); }
    std::int64_t stride_var() const { return static_cast<std::int64_t>(nx + 2) * stride_x(); }
    std::int64_t total_cells() const { return stride_var() * num_vars; }
    int dim(int axis) const { return axis == 0 ? nx : (axis == 1 ? ny : nz); }

    /// In-plane axes (u, v) for a face orthogonal to `axis`, ascending order.
    std::array<int, 2> plane_axes(int axis) const {
        if (axis == 0) return {1, 2};
        if (axis == 1) return {0, 2};
        return {0, 1};
    }
    /// Values in a same-level face message for `vars` variables.
    std::int64_t face_values_same(int axis, int vars) const {
        const auto [u, v] = plane_axes(axis);
        return static_cast<std::int64_t>(dim(u)) * dim(v) * vars;
    }
    /// Values in a level-crossing face message (restricted / quarter face).
    std::int64_t face_values_mixed(int axis, int vars) const {
        const auto [u, v] = plane_axes(axis);
        return static_cast<std::int64_t>(dim(u) / 2) * (dim(v) / 2) * vars;
    }
};

/// A mesh block with data. Movable, non-copyable (data can be large).
class Block {
public:
    Block(BlockKey key, const BlockShape& shape);

    Block(Block&&) = default;
    Block& operator=(Block&&) = default;
    Block(const Block&) = delete;
    Block& operator=(const Block&) = delete;

    const BlockKey& key() const { return key_; }
    void set_key(BlockKey k) { key_ = k; }
    const BlockShape& shape() const { return shape_; }

    double* data() { return data_.data(); }
    const double* data() const { return data_.data(); }
    std::size_t data_size() const { return data_.size(); }
    /// Contiguous storage of variables [var_begin, var_end) — the unit the
    /// paper's task dependencies are declared on (§IV-D).
    std::span<double> group_span(int var_begin, int var_end);
    std::span<const double> group_span(int var_begin, int var_end) const;

    double& at(int var, int x, int y, int z);
    double at(int var, int x, int y, int z) const;

    /// Initializes interior cells from the deterministic field function
    /// evaluated at each cell's physical center (identical across variants
    /// and decompositions). `box` is the block's physical region.
    void init_cells(const Box& box, std::uint64_t seed);

    // --- face transfers -------------------------------------------------
    /// Number of doubles pack/unpack move for this geometry and var range.
    std::int64_t face_value_count(const FaceGeom& g, int vars) const;
    /// Packs this block's boundary face into `out` (sized face_value_count).
    /// Applies restriction when the receiver is coarser, and selects the
    /// correct quarter when the receiver is finer.
    void pack_face(const FaceGeom& g, int var_begin, int var_end, std::span<double> out) const;
    /// Unpacks a received face into this block's ghost layer. Applies
    /// prolongation when the sender is coarser.
    void unpack_face(const FaceGeom& g, int var_begin, int var_end, std::span<const double> in);
    /// Pack-into-view: packs straight into a raw byte view (e.g. a transport
    /// frame payload), avoiding the staging buffer. The view must be 8-byte
    /// aligned and exactly face_value_count doubles long.
    void pack_face(const FaceGeom& g, int var_begin, int var_end, std::span<std::byte> out) const;
    /// Unpack-from-view counterpart (reads a received frame in place).
    void unpack_face(const FaceGeom& g, int var_begin, int var_end,
                     std::span<const std::byte> in);
    /// Direct intra-rank ghost fill: equivalent to src.pack + this->unpack.
    void copy_face_from(const Block& src, const FaceGeom& g, int var_begin, int var_end);
    /// Domain-boundary ghost fill: reflects the boundary plane (Neumann).
    void reflect_face(int axis, int sense, int var_begin, int var_end);

    // --- refinement data operations --------------------------------------
    /// Fills this block (a child in `octant`) from its parent's data:
    /// every parent cell is replicated 2x2x2 at the finer resolution.
    void fill_from_parent(const Block& parent, int octant);
    /// Accumulates a child's data into this (parent) block: each parent cell
    /// becomes the average of the 8 covering child cells.
    void absorb_child(const Block& child, int octant);

    // --- compute -----------------------------------------------------------
    /// 7-point stencil sweep over [var_begin, var_end). Returns FLOPs done.
    std::int64_t stencil7(int var_begin, int var_end);
    /// 27-point stencil sweep (miniAMR's alternative stencil).
    std::int64_t stencil27(int var_begin, int var_end);
    /// Dispatches on the configured stencil (7 or 27 points).
    std::int64_t apply_stencil(int stencil_points, int var_begin, int var_end) {
        return stencil_points == 27 ? stencil27(var_begin, var_end)
                                    : stencil7(var_begin, var_end);
    }
    /// Sum of interior cells over [var_begin, var_end).
    double checksum(int var_begin, int var_end) const;

private:
    std::int64_t index(int var, int x, int y, int z) const;
    /// Fills edge/corner ghosts (not covered by face exchange) by clamping
    /// to the nearest valid cell — needed by the 27-point stencil.
    void fill_ghost_edges(int var);

    BlockKey key_;
    BlockShape shape_;
    std::vector<double> data_;
};

}  // namespace dfamr::amr
