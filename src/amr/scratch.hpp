// Thread-local kernel scratch with explicit retirement.
//
// The stencil and advection kernels stage rolling planes in a per-thread
// buffer sized for the largest block they have touched. In a one-shot run
// that allocation dies with the process, but dfamr-serve runs many worlds
// back to back on a long-lived worker pool — without retirement every pool
// thread would pin the largest block's scratch for the daemon's lifetime.
// retire_tls_scratch() bumps a global generation; each thread notices the
// stale stamp on its next acquisition, frees its old buffer, and resizes
// for the current workload.
#pragma once

#include <cstddef>
#include <vector>

namespace dfamr::amr {

/// Returns this thread's scratch buffer, at least `min_size` doubles.
/// Contents are unspecified on entry.
std::vector<double>& tls_scratch(std::size_t min_size);

/// Invalidates every thread's scratch buffer. Threads release their
/// allocation lazily at the next tls_scratch() call, so this is safe to
/// call while other threads are idle between jobs (dfamr-serve calls it
/// after each job segment).
void retire_tls_scratch();

}  // namespace dfamr::amr
