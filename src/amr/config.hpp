// miniAMR configuration: every option of the reference mini-app that this
// reproduction honours, plus the three options introduced by the paper
// (--send_faces already existed; --separate_buffers and --max_comm_tasks are
// new in §IV-A).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "amr/object.hpp"
#include "common/cli.hpp"

namespace dfamr::amr {

/// Which hybrid variant executes the mini-app (§V).
enum class Variant {
    MpiOnly,   // reference MPI-only, one rank per core
    ForkJoin,  // MPI + fork-join worksharing, master-only MPI
    TampiOss,  // the paper's data-flow taskification (TAMPI + OmpSs-2)
};

std::string to_string(Variant v);

struct Config {
    // --- domain decomposition -------------------------------------------
    int npx = 1, npy = 1, npz = 1;          // ranks per dimension
    int init_x = 1, init_y = 1, init_z = 1; // initial blocks per rank per dim
    int nx = 10, ny = 10, nz = 10;          // cells per block per dim (even)

    // --- variables and grouping ------------------------------------------
    int num_vars = 40;   // variables per cell
    int comm_vars = 0;   // variables per communication group (0 = all at once)
    int stencil = 7;     // stencil points: 7 (default) or 27

    // --- time stepping ----------------------------------------------------
    int num_tsteps = 20;      // timesteps to simulate
    int stages_per_ts = 20;   // stages (comm+stencil sweeps) per timestep
    int checksum_freq = 5;    // stages between checksum validations (0 = off)
    // Relative drift tolerated between consecutive checksums. The 7-point
    // average is exactly conservative with reflective domain ghosts, but the
    // restriction/prolongation at coarse-fine faces is not, so a small drift
    // per stage is legitimate (the reference mini-app's validation is also
    // tolerance-based for this reason).
    double tol = 0.05;

    // --- refinement --------------------------------------------------------
    int num_refine = 5;       // maximum refinement level
    int refine_freq = 5;      // timesteps between refinement phases (0 = off)
    int block_change = 0;     // max level changes per block per refinement (0 = num_refine)
    bool uniform_refine = false;  // refine everything everywhere (stress mode)

    // --- load balancing ----------------------------------------------------
    bool lb_opt = true;           // perform RCB load balancing inside refinement
    double inbalance = 0.05;      // trigger threshold: (max-avg)/avg above this rebalances

    // --- scenario subsystem (estimator-driven refinement) --------------------
    // Problem generator: "synthetic" keeps the reference stencil sweep over
    // hashed cell data; a registered generator name (gaussian,
    // slotted_cylinder, front) initializes the fields from its profile and
    // replaces the sweep with its advection kernel. Names are validated
    // against the registry by the driver (the amr layer cannot see it).
    std::string scenario = "synthetic";
    // Refinement condition: "objects" (the reference miniAMR criterion) or
    // a field-based estimator ("gradient", "curvature").
    std::string estimator = "objects";
    // A block refines iff its estimator score is strictly above this.
    double refine_threshold = 0.5;
    // Consecutive coarsen-willing checks before a block actually coarsens
    // (hysteresis; 1 = coarsen immediately, the legacy behaviour).
    int deref_count = 1;

    // --- objects ------------------------------------------------------------
    std::vector<ObjectSpec> objects;

    // --- communication options (paper §IV-A) --------------------------------
    bool send_faces = false;      // one MPI message per face (default: aggregate
                                  // all faces per direction+neighbor)
    bool separate_buffers = false;  // per-direction comm buffers (kills false deps)
    int max_comm_tasks = 0;       // with send_faces: max messages per direction and
                                  // neighbor; 0 = one per face (§IV-A)
    // Zero-copy pack/unpack: faces are packed directly into the transport
    // frame and unpacked straight out of the received frame, eliminating
    // both staging copies. Honoured by the MpiOnly and ForkJoin variants;
    // TampiOss ignores it (its task dependencies are declared on the
    // persistent staging buffers, which per-message transient frames would
    // invalidate — the same reason --separate_buffers exists).
    bool zero_copy = false;

    // --- TAMPI+OSS specific ---------------------------------------------------
    bool delayed_checksum = false;  // §IV-C taskwait-with-deps optimization
    // Ablation switch for the §IV-B claim ("our taskification removes ~80%
    // of the total refinement time"): false = keep the refinement data
    // operations sequential, as before the paper's work.
    bool taskify_refinement = true;

    int workers = 1;  // cores per rank for hybrid variants (OpenMP/OmpSs-2 threads)

    std::uint64_t seed = 42;  // seeds initial cell data

    // --- resilience (fault injection / checkpoint-restart) --------------------
    int checkpoint_every = 0;  // timesteps between checkpoints (0 = off)
    std::string checkpoint_path = "dfamr.ckpt";
    std::string restore_path;     // restore simulation state from this file
    double comm_timeout_s = 10;   // hardened comm completion deadline (seconds)
    int comm_max_attempts = 5;    // send attempts before CommTimeout

    // ---- derived -------------------------------------------------------------
    int num_ranks() const { return npx * npy * npz; }
    int vars_per_group() const { return comm_vars > 0 ? comm_vars : num_vars; }
    int num_groups() const {
        const int g = vars_per_group();
        return (num_vars + g - 1) / g;
    }
    int max_block_change() const { return block_change > 0 ? block_change : num_refine; }
    /// Cells including the one-deep ghost shell.
    std::int64_t cells_with_ghosts() const {
        return static_cast<std::int64_t>(nx + 2) * (ny + 2) * (nz + 2);
    }
    std::int64_t cells_interior() const { return static_cast<std::int64_t>(nx) * ny * nz; }

    /// Throws ConfigError on invalid combinations (odd block sizes, etc.).
    void validate() const;

    /// Registers all options on a CLI parser (shared by examples/benches).
    static void register_cli(CliParser& cli);
    /// Builds a Config from parsed CLI values: starts from `base` and
    /// overrides exactly the options present on the command line (so
    /// examples can ship problem-specific defaults).
    static Config from_cli(const CliParser& cli, Config base);
    static Config from_cli(const CliParser& cli);
};

/// The input of Rico et al. (2019): one big sphere entering the mesh from a
/// lower corner, producing early imbalance (§V, first input problem).
Config single_sphere_input();

/// The input of Vaughan et al. (2015): four spheres crossing the mesh along
/// the X axis without colliding (§V, second input problem).
Config four_spheres_input();

}  // namespace dfamr::amr
