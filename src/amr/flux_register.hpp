// Per-block flux registers for Berger–Colella refluxing at coarse-fine
// interfaces.
//
// The flux-form advection kernel records the per-area upwind flux it used at
// every cell face on each of the block's six boundary planes. Across a
// same-level interface both blocks compute the face flux from bitwise
// identical inputs, so the telescoping sum over the interface cancels
// exactly and the registers are pure bookkeeping. Across a coarse-fine
// interface the two sides disagree (the coarse side fluxed against a
// restricted ghost, the fine side against prolonged ghosts); the fine
// side's registers are restricted (area-weighted quarter-face average) and
// shipped to the coarse side, which replaces its own flux with the fine
// sum — after the correction every interface again telescopes to zero and
// total mass is conserved to rounding.
//
// Registers are transient per-stage state: the kernel overwrites them on
// every advance and the reflux pass consumes them in the same stage, so
// they are never checkpointed and are rebuilt whenever the comm plan is.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "amr/block.hpp"

namespace dfamr::amr {

class FluxRegister {
public:
    FluxRegister() = default;
    explicit FluxRegister(const BlockShape& shape);

    const BlockShape& shape() const { return shape_; }

    /// Flux at the face plane orthogonal to `axis` on the `sense` side
    /// (+1 high, -1 low), variable `var`, in-plane cell (u, v) with the
    /// same 1-based convention as Block::at and pack_face.
    double& at(int axis, int sense, int var, int u, int v);
    double at(int axis, int sense, int var, int u, int v) const;

    /// Contiguous storage of variables [var_begin, var_end) — registers are
    /// var-major so task dependencies can be declared per variable group,
    /// mirroring Block::group_span.
    std::span<double> slice(int var_begin, int var_end);
    std::span<const double> slice(int var_begin, int var_end) const;

    /// Restricts one face's registers for a coarser receiver: each output
    /// value is the area-weighted average (0.25 x 2x2 sum) of the four fine
    /// face fluxes it covers, in exactly the order Block::pack_face uses for
    /// FaceRel::Coarser so the flux stream pairs element-wise with the ghost
    /// plan's transfer lists. `out` must hold face_values_mixed(axis, vars).
    void pack_restricted(int axis, int sense, int var_begin, int var_end,
                         std::span<double> out) const;

private:
    std::int64_t index(int axis, int sense, int var, int u, int v) const;

    BlockShape shape_;
    std::array<std::int64_t, 6> face_offset_{};  // face = axis * 2 + (sense > 0)
    std::int64_t per_var_ = 0;
    std::vector<double> data_;
};

}  // namespace dfamr::amr
