// Per-rank ghost-exchange plan, recomputed whenever the mesh structure
// changes. Mirrors miniAMR's `comm` tables.
//
// Exchanges are organized per direction (x, y, z — processed sequentially in
// the reference code because they share communication buffers; the paper's
// --separate_buffers option gives each direction its own buffers instead).
// Within a direction a rank has, per remote neighbor rank, an ordered list
// of face transfers; both sides derive the identical list (and therefore
// identical buffer offsets and MPI tags) from the replicated structure.
//
// Message granularity (paper §IV-A):
//  * default            — all faces for (direction, neighbor) in ONE message
//  * --send_faces       — one message per face
//  * --max_comm_tasks N — with --send_faces, at most N messages per
//                         (direction, neighbor): faces are grouped into N
//                         contiguous chunks of the face list
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "amr/block.hpp"
#include "amr/structure.hpp"

namespace dfamr::amr {

/// One intra-rank ghost fill: dst's ghost layer gets src's boundary data.
struct IntraCopy {
    BlockKey dst;
    BlockKey src;
    FaceGeom geom;  // relative to dst
};

/// One face within an inter-rank message stream.
struct FaceTransfer {
    BlockKey mine;    // my block
    BlockKey theirs;  // remote block
    FaceGeom geom;    // relative to my block (pack: receiver rel; unpack: sender rel)
    std::int64_t value_offset = 0;  // offset (in doubles, per variable group) in the
                                    // direction's send/recv stream for this neighbor
    std::int64_t value_count = 0;   // doubles per variable group
};

/// A contiguous chunk of the face list that travels as one MPI message
/// (the unit that becomes one communication task in the paper's approach).
struct MessageChunk {
    int first_face = 0;  // index range into FaceTransfer list
    int face_count = 0;
    std::int64_t value_offset = 0;  // offset of the chunk in the stream
    std::int64_t value_count = 0;
    int tag = 0;
};

/// All traffic between this rank and one neighbor rank in one direction.
struct NeighborExchange {
    int peer = -1;
    std::vector<FaceTransfer> sends;  // ordered; offsets into the send stream
    std::vector<FaceTransfer> recvs;  // ordered; offsets into the recv stream
    std::vector<MessageChunk> send_chunks;
    std::vector<MessageChunk> recv_chunks;
    std::int64_t send_values = 0;  // total doubles per variable group
    std::int64_t recv_values = 0;
};

/// One direction's plan for a rank.
struct DirectionPlan {
    std::vector<IntraCopy> copies;
    std::vector<NeighborExchange> neighbors;  // ordered by peer rank
    /// Faces of owned blocks on the physical domain boundary (ghosts filled
    /// by reflection).
    std::vector<std::pair<BlockKey, int>> boundary;  // (block, sense)
};

/// MPI tag-space partitioning (§IV-A): one sub-space per direction so
/// communication tasks of different directions can run concurrently.
inline constexpr int kTagSpacePerDirection = 1 << 20;
inline int direction_tag(int direction, int id) {
    return direction * kTagSpacePerDirection + id;
}
/// Tag sub-space used by the refinement/load-balance block exchange.
inline constexpr int kExchangeTagBase = 3 * kTagSpacePerDirection;
/// Tag sub-spaces (one per direction) used by the coarse-fine flux-register
/// exchange — disjoint from both the ghost directions (0..2) and the
/// exchange-control space so reflux traffic can overlap either.
inline constexpr int kFluxTagBase = 4 * kTagSpacePerDirection;
inline int flux_tag(int direction, int id) {
    return kFluxTagBase + direction * kTagSpacePerDirection + id;
}

struct CommPlanOptions {
    bool send_faces = false;
    int max_comm_tasks = 0;  // 0 = one message per face (with send_faces)
};

/// Builds rank `rank`'s plan from the replicated structure. Both endpoints
/// of every exchange compute identical face orders, chunking, and tags.
class CommPlan {
public:
    CommPlan() = default;
    /// `shape` supplies face sizes; value counts/offsets are per single
    /// variable (callers scale by the variable-group size).
    CommPlan(const GlobalStructure& structure, const BlockShape& shape, int rank,
             const CommPlanOptions& options);
    /// Same, with the rank's (sorted) block list already known — avoids the
    /// O(total blocks) ownership scan when plans for many ranks are built
    /// (the simulator builds all of them).
    CommPlan(const GlobalStructure& structure, const BlockShape& shape, int rank,
             const CommPlanOptions& options, std::span<const BlockKey> mine);

    const DirectionPlan& direction(int d) const { return directions_[static_cast<std::size_t>(d)]; }
    int rank() const { return rank_; }

    /// Total inter-rank messages this rank sends per variable group.
    std::int64_t total_send_messages() const;
    std::int64_t total_send_values() const;

private:
    int rank_ = -1;
    std::array<DirectionPlan, 3> directions_;
};

/// The coarse-fine subset of the ghost plan, reused for the flux-register
/// exchange (Berger–Colella refluxing). Derived from a CommPlan by
/// filtering: flux sends are the ghost sends whose receiver is coarser
/// (I own the fine side and ship restricted registers), flux recvs are the
/// ghost recvs whose sender is finer (I own the coarse side and reflux),
/// and intra-rank copies are the ghost copies whose source is finer.
/// Filtering a TransferOrder-sorted list preserves its order, so the two
/// endpoints' streams still pair element-wise. Flux traffic always travels
/// as one message per (direction, neighbor) — the streams are a fraction
/// of a ghost plane, below any sensible --send_faces granularity.
struct FluxPlan {
    struct Direction {
        std::vector<IntraCopy> copies;            // dst = my coarse block (rel == Finer)
        std::vector<NeighborExchange> neighbors;  // level-crossing faces only
    };
    std::array<Direction, 3> directions;

    const Direction& direction(int d) const { return directions[static_cast<std::size_t>(d)]; }
};

FluxPlan build_flux_plan(const CommPlan& plan, const BlockShape& shape);

}  // namespace dfamr::amr
