#include "amr/config.hpp"

#include "common/error.hpp"

namespace dfamr::amr {

std::string to_string(Variant v) {
    switch (v) {
        case Variant::MpiOnly: return "MPI-only";
        case Variant::ForkJoin: return "MPI+OMP fork-join";
        case Variant::TampiOss: return "TAMPI+OSS";
    }
    return "unknown";
}

void Config::validate() const {
    DFAMR_REQUIRE(npx >= 1 && npy >= 1 && npz >= 1, "ranks per dimension must be >= 1");
    DFAMR_REQUIRE(init_x >= 1 && init_y >= 1 && init_z >= 1,
                  "initial blocks per rank per dimension must be >= 1");
    DFAMR_REQUIRE(nx >= 2 && ny >= 2 && nz >= 2, "block sizes must be >= 2");
    DFAMR_REQUIRE(nx % 2 == 0 && ny % 2 == 0 && nz % 2 == 0,
                  "block sizes must be even (face restriction averages 2x2 cells)");
    DFAMR_REQUIRE(num_vars >= 1, "need at least one variable");
    DFAMR_REQUIRE(comm_vars >= 0 && comm_vars <= num_vars,
                  "comm_vars must be in [0, num_vars]");
    DFAMR_REQUIRE(stencil == 7 || stencil == 27, "stencil must be 7 or 27");
    DFAMR_REQUIRE(num_tsteps >= 1, "need at least one timestep");
    DFAMR_REQUIRE(stages_per_ts >= 1, "need at least one stage per timestep");
    DFAMR_REQUIRE(checksum_freq >= 0, "checksum_freq must be >= 0");
    DFAMR_REQUIRE(tol > 0, "tolerance must be positive");
    DFAMR_REQUIRE(num_refine >= 0 && num_refine <= 12, "num_refine must be in [0, 12]");
    DFAMR_REQUIRE(refine_freq >= 0, "refine_freq must be >= 0");
    DFAMR_REQUIRE(block_change >= 0, "block_change must be >= 0");
    DFAMR_REQUIRE(inbalance >= 0, "inbalance threshold must be >= 0");
    DFAMR_REQUIRE(!scenario.empty(), "scenario name must not be empty");
    DFAMR_REQUIRE(!estimator.empty(), "estimator name must not be empty");
    DFAMR_REQUIRE(refine_threshold >= 0, "refine_threshold must be >= 0");
    DFAMR_REQUIRE(deref_count >= 1, "deref_count must be >= 1");
    DFAMR_REQUIRE(max_comm_tasks >= 0, "max_comm_tasks must be >= 0");
    DFAMR_REQUIRE(workers >= 1, "workers must be >= 1");
    DFAMR_REQUIRE(checkpoint_every >= 0, "checkpoint_every must be >= 0");
    DFAMR_REQUIRE(checkpoint_every == 0 || !checkpoint_path.empty(),
                  "checkpointing needs a checkpoint_path");
    DFAMR_REQUIRE(comm_timeout_s > 0, "comm_timeout must be positive");
    DFAMR_REQUIRE(comm_max_attempts >= 1, "comm_retries must allow at least one attempt");
    for (const ObjectSpec& obj : objects) {
        DFAMR_REQUIRE(obj.size.x > 0 && obj.size.y > 0 && obj.size.z > 0,
                      "objects must have positive size");
    }
}

void Config::register_cli(CliParser& cli) {
    cli.add_option("--npx", "ranks in x", "1");
    cli.add_option("--npy", "ranks in y", "1");
    cli.add_option("--npz", "ranks in z", "1");
    cli.add_option("--init_x", "initial blocks per rank in x", "1");
    cli.add_option("--init_y", "initial blocks per rank in y", "1");
    cli.add_option("--init_z", "initial blocks per rank in z", "1");
    cli.add_option("--nx", "cells per block in x (even)", "10");
    cli.add_option("--ny", "cells per block in y (even)", "10");
    cli.add_option("--nz", "cells per block in z (even)", "10");
    cli.add_option("--num_vars", "variables per cell", "40");
    cli.add_option("--comm_vars", "variables per communication group (0 = all)", "0");
    cli.add_option("--stencil", "stencil points: 7 or 27", "7");
    cli.add_option("--num_tsteps", "timesteps to run", "20");
    cli.add_option("--stages_per_ts", "stages per timestep", "20");
    cli.add_option("--checksum_freq", "stages between checksums (0 = off)", "5");
    cli.add_option("--tol", "relative checksum drift tolerance", "0.05");
    cli.add_option("--num_refine", "maximum refinement level", "5");
    cli.add_option("--refine_freq", "timesteps between refinements (0 = off)", "5");
    cli.add_option("--block_change", "max level changes per block per refinement (0 = num_refine)",
                   "0");
    cli.add_option("--scenario",
                   "problem generator: synthetic | gaussian | slotted_cylinder | front",
                   "synthetic");
    cli.add_option("--estimator",
                   "refinement condition: objects | gradient | curvature", "objects");
    cli.add_option("--refine_threshold",
                   "estimator score above which a block refines (strict)", "0.5");
    cli.add_option("--deref_count",
                   "consecutive coarsen-willing checks before a block coarsens", "1");
    cli.add_flag("--uniform_refine", "refine uniformly everywhere");
    cli.add_flag("--no_lb", "disable RCB load balancing");
    cli.add_option("--inbalance", "imbalance threshold triggering load balance", "0.05");
    cli.add_flag("--send_faces", "one MPI message per face");
    cli.add_flag("--separate_buffers", "per-direction communication buffers (paper §IV-A)");
    cli.add_option("--max_comm_tasks",
                   "max communication tasks per direction and neighbor with --send_faces "
                   "(0 = one per face; paper §IV-A)",
                   "0");
    cli.add_flag("--zero_copy",
                 "pack faces directly into transport frames and unpack from received "
                 "frames (MpiOnly / ForkJoin; TampiOss ignores it)");
    cli.add_flag("--delayed_checksum", "validate the previous checksum stage (paper §IV-C)");
    cli.add_flag("--serial_refinement",
                 "ablation: keep refinement data operations sequential (pre-paper behaviour)");
    cli.add_option("--workers", "cores per rank for hybrid variants", "1");
    cli.add_option("--seed", "seed for initial cell values", "42");
    cli.add_option("--checkpoint_every", "timesteps between checkpoints (0 = off)", "0");
    cli.add_option("--checkpoint_path", "checkpoint file path", "dfamr.ckpt");
    cli.add_option("--restore", "restore simulation state from a checkpoint file", "");
    cli.add_option("--comm_timeout", "hardened communication deadline in seconds", "10");
    cli.add_option("--comm_retries", "send attempts before CommTimeout", "5");
    cli.add_multi_option(
        "--object", 14,
        "object spec: type bounce cx cy cz mx my mz sx sy sz ix iy iz "
        "(type 0-21, bounce 0/1, center, move/ts, semi-size, growth/ts)");
}

Config Config::from_cli(const CliParser& cli) { return from_cli(cli, Config{}); }

Config Config::from_cli(const CliParser& cli, Config base) {
    Config cfg = std::move(base);
    auto set_int = [&cli](const char* name, int& field) {
        if (cli.has(name)) field = static_cast<int>(cli.get_int(name));
    };
    auto set_double = [&cli](const char* name, double& field) {
        if (cli.has(name)) field = cli.get_double(name);
    };
    set_int("--npx", cfg.npx);
    set_int("--npy", cfg.npy);
    set_int("--npz", cfg.npz);
    set_int("--init_x", cfg.init_x);
    set_int("--init_y", cfg.init_y);
    set_int("--init_z", cfg.init_z);
    set_int("--nx", cfg.nx);
    set_int("--ny", cfg.ny);
    set_int("--nz", cfg.nz);
    set_int("--num_vars", cfg.num_vars);
    set_int("--comm_vars", cfg.comm_vars);
    set_int("--stencil", cfg.stencil);
    set_int("--num_tsteps", cfg.num_tsteps);
    set_int("--stages_per_ts", cfg.stages_per_ts);
    set_int("--checksum_freq", cfg.checksum_freq);
    set_double("--tol", cfg.tol);
    set_int("--num_refine", cfg.num_refine);
    set_int("--refine_freq", cfg.refine_freq);
    set_int("--block_change", cfg.block_change);
    if (cli.has("--scenario")) cfg.scenario = cli.get_string("--scenario");
    if (cli.has("--estimator")) cfg.estimator = cli.get_string("--estimator");
    set_double("--refine_threshold", cfg.refine_threshold);
    set_int("--deref_count", cfg.deref_count);
    if (cli.get_flag("--uniform_refine")) cfg.uniform_refine = true;
    if (cli.get_flag("--no_lb")) cfg.lb_opt = false;
    set_double("--inbalance", cfg.inbalance);
    if (cli.get_flag("--send_faces")) cfg.send_faces = true;
    if (cli.get_flag("--separate_buffers")) cfg.separate_buffers = true;
    set_int("--max_comm_tasks", cfg.max_comm_tasks);
    if (cli.get_flag("--zero_copy")) cfg.zero_copy = true;
    if (cli.get_flag("--delayed_checksum")) cfg.delayed_checksum = true;
    if (cli.get_flag("--serial_refinement")) cfg.taskify_refinement = false;
    set_int("--workers", cfg.workers);
    if (cli.has("--seed")) cfg.seed = static_cast<std::uint64_t>(cli.get_int("--seed"));
    set_int("--checkpoint_every", cfg.checkpoint_every);
    if (cli.has("--checkpoint_path")) cfg.checkpoint_path = cli.get_string("--checkpoint_path");
    if (cli.has("--restore")) cfg.restore_path = cli.get_string("--restore");
    set_double("--comm_timeout", cfg.comm_timeout_s);
    set_int("--comm_retries", cfg.comm_max_attempts);

    if (!cli.get_multi("--object").empty()) cfg.objects.clear();
    for (const auto& vals : cli.get_multi("--object")) {
        ObjectSpec obj;
        const int type = std::stoi(vals[0]);
        DFAMR_REQUIRE(type >= 0 && type <= 21, "object type must be 0-21");
        obj.type = static_cast<ObjectType>(type);
        obj.bounce = std::stoi(vals[1]) != 0;
        obj.center = {std::stod(vals[2]), std::stod(vals[3]), std::stod(vals[4])};
        obj.move = {std::stod(vals[5]), std::stod(vals[6]), std::stod(vals[7])};
        obj.size = {std::stod(vals[8]), std::stod(vals[9]), std::stod(vals[10])};
        obj.inc = {std::stod(vals[11]), std::stod(vals[12]), std::stod(vals[13])};
        cfg.objects.push_back(obj);
    }
    cfg.validate();
    return cfg;
}

Config single_sphere_input() {
    // §V / §V-A: a big sphere entering the mesh from a lower corner over 20
    // timesteps; 60 stages per timestep, 18^3-cell blocks, 60 variables,
    // refinement every 5 timesteps, checksum every 10 stages.
    Config cfg;
    cfg.nx = cfg.ny = cfg.nz = 18;
    cfg.num_vars = 60;
    cfg.num_tsteps = 20;
    cfg.stages_per_ts = 60;
    cfg.refine_freq = 5;
    cfg.checksum_freq = 10;

    ObjectSpec sphere;
    sphere.type = ObjectType::SpheroidSurface;
    sphere.center = {-0.3, -0.3, -0.3};
    sphere.size = {0.5, 0.5, 0.5};
    // Reaches the mesh center area by the end of the run.
    sphere.move = {0.8 / cfg.num_tsteps, 0.8 / cfg.num_tsteps, 0.8 / cfg.num_tsteps};
    cfg.objects.push_back(sphere);
    return cfg;
}

Config four_spheres_input() {
    // §V / Vaughan et al.: two spheres on one side moving along +x, two on
    // the opposite side moving along -x; they pass near the center without
    // colliding and stop short of the opposite border.
    Config cfg;
    cfg.nx = cfg.ny = cfg.nz = 12;
    cfg.num_vars = 40;
    cfg.num_tsteps = 99;
    cfg.stages_per_ts = 40;
    cfg.refine_freq = 5;
    cfg.checksum_freq = 10;

    const double radius = 0.09;
    const double travel = 1.0 - 2 * (radius + 0.06);  // stay inside the borders
    const double rate = travel / cfg.num_tsteps;
    struct Placement {
        Vec3d center;
        double dir;
    };
    const Placement placements[4] = {
        {{radius + 0.06, 0.25, 0.25}, +1.0},
        {{radius + 0.06, 0.75, 0.75}, +1.0},
        {{1.0 - radius - 0.06, 0.25, 0.75}, -1.0},
        {{1.0 - radius - 0.06, 0.75, 0.25}, -1.0},
    };
    for (const Placement& p : placements) {
        ObjectSpec sphere;
        sphere.type = ObjectType::SpheroidSurface;
        sphere.center = p.center;
        sphere.size = {radius, radius, radius};
        sphere.move = {p.dir * rate, 0, 0};
        cfg.objects.push_back(sphere);
    }
    return cfg;
}

}  // namespace dfamr::amr
