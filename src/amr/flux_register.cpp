#include "amr/flux_register.hpp"

#include "common/error.hpp"

namespace dfamr::amr {

FluxRegister::FluxRegister(const BlockShape& shape) : shape_(shape) {
    std::int64_t offset = 0;
    for (int axis = 0; axis < 3; ++axis) {
        const auto [ua, va] = shape_.plane_axes(axis);
        const std::int64_t plane = static_cast<std::int64_t>(shape_.dim(ua)) * shape_.dim(va);
        face_offset_[static_cast<std::size_t>(axis * 2)] = offset;
        face_offset_[static_cast<std::size_t>(axis * 2 + 1)] = offset + plane;
        offset += 2 * plane;
    }
    per_var_ = offset;
    data_.assign(static_cast<std::size_t>(per_var_ * shape_.num_vars), 0.0);
}

std::int64_t FluxRegister::index(int axis, int sense, int var, int u, int v) const {
    const auto [ua, va] = shape_.plane_axes(axis);
    const int face = axis * 2 + (sense > 0 ? 1 : 0);
    return var * per_var_ + face_offset_[static_cast<std::size_t>(face)] +
           static_cast<std::int64_t>(u - 1) * shape_.dim(va) + (v - 1);
}

double& FluxRegister::at(int axis, int sense, int var, int u, int v) {
    return data_[static_cast<std::size_t>(index(axis, sense, var, u, v))];
}

double FluxRegister::at(int axis, int sense, int var, int u, int v) const {
    return data_[static_cast<std::size_t>(index(axis, sense, var, u, v))];
}

std::span<double> FluxRegister::slice(int var_begin, int var_end) {
    return std::span<double>(data_).subspan(
        static_cast<std::size_t>(var_begin * per_var_),
        static_cast<std::size_t>((var_end - var_begin) * per_var_));
}

std::span<const double> FluxRegister::slice(int var_begin, int var_end) const {
    return std::span<const double>(data_).subspan(
        static_cast<std::size_t>(var_begin * per_var_),
        static_cast<std::size_t>((var_end - var_begin) * per_var_));
}

void FluxRegister::pack_restricted(int axis, int sense, int var_begin, int var_end,
                                   std::span<double> out) const {
    const auto [ua, va] = shape_.plane_axes(axis);
    const int U = shape_.dim(ua);
    const int V = shape_.dim(va);
    DFAMR_REQUIRE(out.size() ==
                      static_cast<std::size_t>(shape_.face_values_mixed(axis, var_end - var_begin)),
                  "flux_register: pack_restricted output size mismatch");
    std::size_t o = 0;
    for (int var = var_begin; var < var_end; ++var) {
        for (int u = 0; u < U / 2; ++u) {
            for (int v = 0; v < V / 2; ++v) {
                double sum = 0;
                for (int du = 1; du <= 2; ++du) {
                    for (int dv = 1; dv <= 2; ++dv) {
                        sum += at(axis, sense, var, 2 * u + du, 2 * v + dv);
                    }
                }
                out[o++] = 0.25 * sum;
            }
        }
    }
}

}  // namespace dfamr::amr
