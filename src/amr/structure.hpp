// Global mesh structure: the set of leaf blocks of the octree forest and
// their owning ranks.
//
// Reproduction note (documented in DESIGN.md): the reference miniAMR keeps
// the structure distributed and coordinates refinement with control
// messages. Here every rank holds an identical replica updated by
// deterministic rules (object positions are global knowledge in miniAMR
// too), which preserves the refinement *results*, the 2:1 invariant, the
// ghost-exchange patterns and the load-balancing block movements — the
// behaviours the paper studies — while removing distributed bookkeeping
// that none of the paper's experiments measure in isolation. The DES cost
// model charges the refinement-phase collectives explicitly.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "amr/block.hpp"
#include "amr/config.hpp"
#include "amr/object.hpp"

namespace dfamr::amr {

/// One face neighbor of a block (there are 4 when the neighbor side is finer).
struct FaceNeighbor {
    BlockKey key;
    int owner = -1;
    FaceRel rel = FaceRel::Same;
    /// Quarter of the coarser face involved (0..3), meaningful when
    /// rel != Same. Shared convention with FaceGeom::quad.
    int quad = 0;
};

/// Outcome of planning one refinement round.
struct RefineRound {
    std::vector<BlockKey> refine;           // leaves to split into 8
    std::vector<BlockKey> coarsen_parents;  // parents whose 8 children merge
    bool empty() const { return refine.empty() && coarsen_parents.empty(); }
};

class GlobalStructure {
public:
    explicit GlobalStructure(const Config& cfg);

    int max_level() const { return max_level_; }
    int num_ranks() const { return num_ranks_; }
    /// Leaves in deterministic (key) order with their owners.
    const std::map<BlockKey, int>& leaves() const { return owners_; }
    std::size_t num_blocks() const { return owners_.size(); }
    int owner(const BlockKey& key) const;
    bool is_leaf(const BlockKey& key) const { return owners_.count(key) != 0; }
    std::vector<BlockKey> blocks_of(int rank) const;
    std::vector<std::int64_t> blocks_per_rank() const;

    /// Physical region of a block in the unit cube.
    Box box(const BlockKey& key) const;
    /// Domain extent in finest units per dimension.
    Vec3l domain_units() const { return domain_units_; }

    bool at_domain_boundary(const BlockKey& key, int axis, int sense) const;
    /// Face neighbors across the (axis, sense) face: one Same or Coarser
    /// neighbor, or up to four Finer ones. Empty at the domain boundary.
    std::vector<FaceNeighbor> face_neighbors(const BlockKey& key, int axis, int sense) const;

    /// Verifies the 2:1 constraint over all leaves (tests/invariants).
    bool two_to_one_ok() const;

    // --- refinement -------------------------------------------------------
    /// Plans one refinement round from the object positions: marks leaves,
    /// propagates the 2:1 constraint on the refine set to a fixpoint, and
    /// selects coarsenable sibling groups that keep the invariant.
    RefineRound plan_refine_round(const std::vector<ObjectSpec>& objects,
                                  bool uniform_refine) const;
    /// Plans a round from externally computed marks (+1 refine, -1
    /// coarsen-willing, 0 stay; one entry per leaf): the scenario
    /// subsystem's estimator conditions mark leaves from field data, then
    /// this applies the same 2:1 propagation and sibling-group selection as
    /// the object path. Marks must be identical on every rank.
    RefineRound plan_refine_round_marks(std::map<BlockKey, int> marks) const;
    /// Applies a planned round to the owner map. Children inherit the parent
    /// owner; a merged parent goes to the octant-0 child's owner.
    void apply_refine_round(const RefineRound& round);

    // --- load balancing ----------------------------------------------------
    /// (max - avg) / avg over blocks per rank; 0 when perfectly balanced.
    double imbalance() const;
    /// Recursive coordinate bisection: deterministic new owner assignment
    /// proportional to rank counts. Does not modify this structure.
    std::map<BlockKey, int> rcb_partition() const;
    /// Installs a new ownership map (must cover exactly the current leaves).
    void set_owners(const std::map<BlockKey, int>& new_owners);

    // --- checkpoint/restart -------------------------------------------------
    /// Replaces the leaf set wholesale with a checkpointed one. Validates
    /// owner ranges and the 2:1 invariant (a corrupt checkpoint must fail
    /// loudly, not corrupt the run).
    void restore_leaves(const std::map<BlockKey, int>& leaves);

private:
    void rcb_recurse(std::vector<std::pair<Vec3d, BlockKey>>& blocks, std::size_t lo,
                     std::size_t hi, int rank_lo, int rank_hi,
                     std::map<BlockKey, int>& result) const;

    int max_level_;
    int num_ranks_;
    Vec3i level0_blocks_;  // total level-0 blocks per dimension
    Vec3l domain_units_;
    std::map<BlockKey, int> owners_;
};

}  // namespace dfamr::amr
