#include "amr/comm_plan.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace dfamr::amr {

namespace {

/// Canonical (sender block, receiver block) order shared by both endpoints.
struct TransferOrder {
    bool outgoing;  // true: order by (mine, theirs); false: by (theirs, mine)
    bool operator()(const FaceTransfer& a, const FaceTransfer& b) const {
        const BlockKey& a1 = outgoing ? a.mine : a.theirs;
        const BlockKey& a2 = outgoing ? a.theirs : a.mine;
        const BlockKey& b1 = outgoing ? b.mine : b.theirs;
        const BlockKey& b2 = outgoing ? b.theirs : b.mine;
        if (a1 != b1) return a1 < b1;
        return a2 < b2;
    }
};

/// Assigns stream offsets and builds the message chunks for one list.
void layout_stream(std::vector<FaceTransfer>& faces, std::vector<MessageChunk>& chunks,
                   std::int64_t& total_values, int direction, const CommPlanOptions& options) {
    total_values = 0;
    for (FaceTransfer& f : faces) {
        f.value_offset = total_values;
        total_values += f.value_count;
    }
    chunks.clear();
    if (faces.empty()) return;

    int num_chunks = 1;
    if (options.send_faces) {
        const int n = static_cast<int>(faces.size());
        num_chunks = options.max_comm_tasks > 0 ? std::min(options.max_comm_tasks, n) : n;
    }
    const int n = static_cast<int>(faces.size());
    int face_cursor = 0;
    for (int c = 0; c < num_chunks; ++c) {
        // Balanced contiguous split: chunk c covers [c*n/k, (c+1)*n/k).
        const int first = face_cursor;
        const int last = (c + 1) * n / num_chunks;  // exclusive
        if (last <= first) continue;
        MessageChunk chunk;
        chunk.first_face = first;
        chunk.face_count = last - first;
        chunk.value_offset = faces[static_cast<std::size_t>(first)].value_offset;
        const FaceTransfer& tail = faces[static_cast<std::size_t>(last - 1)];
        chunk.value_count = tail.value_offset + tail.value_count - chunk.value_offset;
        chunk.tag = direction_tag(direction, static_cast<int>(chunks.size()));
        chunks.push_back(chunk);
        face_cursor = last;
    }
    DFAMR_ASSERT(face_cursor == n);
}

}  // namespace

CommPlan::CommPlan(const GlobalStructure& structure, const BlockShape& shape, int rank,
                   const CommPlanOptions& options)
    : CommPlan(structure, shape, rank, options, structure.blocks_of(rank)) {}

CommPlan::CommPlan(const GlobalStructure& structure, const BlockShape& shape, int rank,
                   const CommPlanOptions& options, std::span<const BlockKey> mine)
    : rank_(rank) {
    for (int axis = 0; axis < 3; ++axis) {
        DirectionPlan& plan = directions_[static_cast<std::size_t>(axis)];
        std::map<int, NeighborExchange> by_peer;
        for (const BlockKey& key : mine) {
            for (int sense : {+1, -1}) {
                if (structure.at_domain_boundary(key, axis, sense)) {
                    plan.boundary.emplace_back(key, sense);
                    continue;
                }
                for (const FaceNeighbor& nb : structure.face_neighbors(key, axis, sense)) {
                    FaceGeom geom{axis, sense, nb.rel, nb.quad};
                    if (nb.owner == rank) {
                        plan.copies.push_back(IntraCopy{key, nb.key, geom});
                        continue;
                    }
                    NeighborExchange& ex = by_peer[nb.owner];
                    ex.peer = nb.owner;
                    const std::int64_t values = nb.rel == FaceRel::Same
                                                    ? shape.face_values_same(axis, 1)
                                                    : shape.face_values_mixed(axis, 1);
                    // I receive the neighbor's boundary into my ghost AND
                    // send my boundary for the neighbor's ghost.
                    FaceTransfer recv{key, nb.key, geom, 0, values};
                    FaceTransfer send{key, nb.key, geom, 0, values};
                    ex.recvs.push_back(recv);
                    ex.sends.push_back(send);
                }
            }
        }
        // Deterministic intra-copy order (map iteration gave deterministic
        // block order already, keep as-is) and canonical per-peer streams.
        for (auto& [peer, ex] : by_peer) {
            std::sort(ex.sends.begin(), ex.sends.end(), TransferOrder{true});
            std::sort(ex.recvs.begin(), ex.recvs.end(), TransferOrder{false});
            layout_stream(ex.sends, ex.send_chunks, ex.send_values, axis, options);
            layout_stream(ex.recvs, ex.recv_chunks, ex.recv_values, axis, options);
            plan.neighbors.push_back(std::move(ex));
        }
    }
}

FluxPlan build_flux_plan(const CommPlan& plan, const BlockShape& shape) {
    FluxPlan flux;
    for (int axis = 0; axis < 3; ++axis) {
        const DirectionPlan& dp = plan.direction(axis);
        FluxPlan::Direction& fd = flux.directions[static_cast<std::size_t>(axis)];
        for (const IntraCopy& copy : dp.copies) {
            if (copy.geom.rel == FaceRel::Finer) fd.copies.push_back(copy);
        }
        for (const NeighborExchange& ex : dp.neighbors) {
            NeighborExchange fex;
            fex.peer = ex.peer;
            for (const FaceTransfer& f : ex.sends) {
                if (f.geom.rel == FaceRel::Coarser) fex.sends.push_back(f);
            }
            for (const FaceTransfer& f : ex.recvs) {
                if (f.geom.rel == FaceRel::Finer) fex.recvs.push_back(f);
            }
            if (fex.sends.empty() && fex.recvs.empty()) continue;
            const auto relayout = [&](std::vector<FaceTransfer>& faces,
                                      std::vector<MessageChunk>& chunks, std::int64_t& total) {
                total = 0;
                for (FaceTransfer& f : faces) {
                    f.value_count = shape.face_values_mixed(axis, 1);
                    f.value_offset = total;
                    total += f.value_count;
                }
                chunks.clear();
                if (faces.empty()) return;
                MessageChunk chunk;
                chunk.first_face = 0;
                chunk.face_count = static_cast<int>(faces.size());
                chunk.value_offset = 0;
                chunk.value_count = total;
                chunk.tag = flux_tag(axis, 0);
                chunks.push_back(chunk);
            };
            relayout(fex.sends, fex.send_chunks, fex.send_values);
            relayout(fex.recvs, fex.recv_chunks, fex.recv_values);
            fd.neighbors.push_back(std::move(fex));
        }
    }
    return flux;
}

std::int64_t CommPlan::total_send_messages() const {
    std::int64_t n = 0;
    for (const DirectionPlan& plan : directions_) {
        for (const NeighborExchange& ex : plan.neighbors) {
            n += static_cast<std::int64_t>(ex.send_chunks.size());
        }
    }
    return n;
}

std::int64_t CommPlan::total_send_values() const {
    std::int64_t n = 0;
    for (const DirectionPlan& plan : directions_) {
        for (const NeighborExchange& ex : plan.neighbors) n += ex.send_values;
    }
    return n;
}

}  // namespace dfamr::amr
