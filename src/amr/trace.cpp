#include "amr/trace.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/error.hpp"

namespace dfamr::amr {

std::string to_string(PhaseKind k) {
    switch (k) {
        case PhaseKind::Stencil: return "stencil";
        case PhaseKind::Pack: return "pack";
        case PhaseKind::Send: return "send";
        case PhaseKind::Recv: return "recv";
        case PhaseKind::Unpack: return "unpack";
        case PhaseKind::IntraCopy: return "intra_copy";
        case PhaseKind::ChecksumLocal: return "checksum_local";
        case PhaseKind::ChecksumReduce: return "checksum_reduce";
        case PhaseKind::RefineSplit: return "refine_split";
        case PhaseKind::RefineMerge: return "refine_merge";
        case PhaseKind::RefineExchange: return "refine_exchange";
        case PhaseKind::LoadBalance: return "load_balance";
        case PhaseKind::CommWait: return "comm_wait";
        case PhaseKind::Control: return "control";
        case PhaseKind::Retry: return "retry";
        case PhaseKind::NetProgress: return "net_progress";
    }
    return "unknown";
}

bool is_refine_phase(PhaseKind k) {
    return k == PhaseKind::RefineSplit || k == PhaseKind::RefineMerge ||
           k == PhaseKind::RefineExchange || k == PhaseKind::LoadBalance;
}

namespace {
std::uint64_t next_tracer_uid() {
    static std::atomic<std::uint64_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

Tracer::Tracer() : uid_(next_tracer_uid()) {}

Tracer::~Tracer() = default;

Tracer::ThreadLog* Tracer::attach_thread_log() {
    const std::thread::id me = std::this_thread::get_id();
    std::lock_guard lock(mutex_);
    // A thread that lost its fast-path cache (another tracer used in
    // between, or an epoch bump) re-adopts its existing log. Matching by
    // thread id is safe: a recycled id implies the old owner is dead, so
    // single-writer appending is preserved.
    for (const auto& log : logs_) {
        if (log->owner == me) return log.get();
    }
    logs_.push_back(std::make_unique<ThreadLog>());
    logs_.back()->owner = me;
    return logs_.back().get();
}

Tracer::Chunk* Tracer::grow(ThreadLog& log) {
    auto chunk = std::make_unique<Chunk>();
    Chunk* raw = chunk.get();
    std::lock_guard lock(mutex_);  // readers walk the chunk list
    log.chunks.push_back(std::move(chunk));
    log.tail = raw;
    return raw;
}

void Tracer::record(int rank, int worker, std::int64_t t0_ns, std::int64_t t1_ns,
                    PhaseKind kind) {
    if (!enabled()) return;
    // Per-thread fast path: one equality check against (uid, epoch), then a
    // plain array store — no shared state touched while the cache holds.
    struct Cache {
        std::uint64_t uid = 0;
        std::uint64_t epoch = 0;
        ThreadLog* log = nullptr;
    };
    thread_local Cache cache;
    const std::uint64_t epoch = epoch_.load(std::memory_order_acquire);
    if (cache.uid != uid_ || cache.epoch != epoch) {
        cache = Cache{uid_, epoch, attach_thread_log()};
    }
    ThreadLog* log = cache.log;
    Chunk* chunk = log->tail;
    std::uint32_t n =
        chunk != nullptr ? chunk->count.load(std::memory_order_relaxed) : kChunkEvents;
    if (n == kChunkEvents) {
        chunk = grow(*log);
        n = 0;
    }
    chunk->events[n] = TraceEvent{rank, worker, t0_ns, t1_ns, kind};
    // Release-publish so a concurrent snapshot sees a fully written event.
    chunk->count.store(n + 1, std::memory_order_release);
}

void Tracer::record_counter(int rank, std::int64_t t_ns, const char* name, double value) {
    if (!enabled()) return;
    std::lock_guard lock(mutex_);
    counters_.push_back(CounterSample{rank, t_ns, name, value});
}

std::vector<TraceEvent> Tracer::snapshot_events() const {
    std::vector<TraceEvent> events;
    std::lock_guard lock(mutex_);
    for (const auto& log : logs_) {
        for (const auto& chunk : log->chunks) {
            const std::uint32_t n = chunk->count.load(std::memory_order_acquire);
            events.insert(events.end(), chunk->events.begin(), chunk->events.begin() + n);
        }
    }
    return events;
}

std::vector<TraceEvent> Tracer::sorted_events() const {
    std::vector<TraceEvent> events = snapshot_events();
    // Total order even when a (rank, worker) lane emits two events with the
    // same start time (e.g. back-to-back zero-length control events):
    // without the (t1, kind) tie-break, a non-stable sort makes CSV/golden
    // output nondeterministic.
    std::sort(events.begin(), events.end(), [](const TraceEvent& a, const TraceEvent& b) {
        if (a.t0_ns != b.t0_ns) return a.t0_ns < b.t0_ns;
        if (a.rank != b.rank) return a.rank < b.rank;
        if (a.worker != b.worker) return a.worker < b.worker;
        if (a.t1_ns != b.t1_ns) return a.t1_ns < b.t1_ns;
        return static_cast<int>(a.kind) < static_cast<int>(b.kind);
    });
    return events;
}

std::vector<CounterSample> Tracer::sorted_counters() const {
    std::vector<CounterSample> counters;
    {
        std::lock_guard lock(mutex_);
        counters = counters_;
    }
    std::sort(counters.begin(), counters.end(),
              [](const CounterSample& a, const CounterSample& b) {
                  if (a.t_ns != b.t_ns) return a.t_ns < b.t_ns;
                  if (a.rank != b.rank) return a.rank < b.rank;
                  return std::string_view(a.name) < std::string_view(b.name);
              });
    return counters;
}

TraceAnalysis Tracer::analyze() const {
    TraceAnalysis result;
    const std::vector<TraceEvent> events = sorted_events();
    if (events.empty()) return result;

    std::int64_t t_min = events.front().t0_ns, t_max = INT64_MIN;
    std::set<std::pair<int, int>> cores;
    std::set<std::pair<int, int>> progress_lanes;
    std::int64_t refine_min = INT64_MAX, refine_max = INT64_MIN;
    for (const TraceEvent& e : events) {
        t_min = std::min(t_min, e.t0_ns);
        t_max = std::max(t_max, e.t1_ns);
        const std::int64_t dur = e.t1_ns - e.t0_ns;
        result.busy_ns_by_kind[e.kind] += dur;
        if (e.worker == kProgressWorker) {
            result.progress_ns += dur;
            progress_lanes.emplace(e.rank, e.worker);
        } else {
            result.busy_ns += dur;
            cores.emplace(e.rank, e.worker);
        }
        if (is_refine_phase(e.kind)) {
            refine_min = std::min(refine_min, e.t0_ns);
            refine_max = std::max(refine_max, e.t1_ns);
        }
    }
    result.events = events.size();
    result.span_ns = t_max - t_min;
    result.cores = static_cast<int>(cores.size());
    result.progress_lanes = static_cast<int>(progress_lanes.size());
    if (result.span_ns > 0 && result.cores > 0) {
        result.utilization = static_cast<double>(result.busy_ns) /
                             (static_cast<double>(result.span_ns) * result.cores);
    }
    result.refine_span_ns = refine_max >= refine_min ? refine_max - refine_min : 0;

    // Sweep line over the compute lanes: count active events per kind to
    // find (a) intervals where at least two *distinct* kinds execute
    // concurrently and (b) all-idle gaps. Zero-duration events are excluded
    // from the sweep state entirely: they occupy no time, so they must not
    // perturb the counters (the old implementation sorted an event's close
    // edge before its own open edge at equal timestamps, driving per-kind
    // counts to -1 and splitting idle gaps around instantaneous markers).
    struct Edge {
        std::int64_t t;
        int delta;  // +1 open, -1 close
        PhaseKind kind;
    };
    std::vector<Edge> edges;
    edges.reserve(events.size() * 2);
    for (const TraceEvent& e : events) {
        if (e.worker == kProgressWorker) continue;  // not a compute core
        if (e.t1_ns <= e.t0_ns) continue;           // zero-duration marker
        edges.push_back(Edge{e.t0_ns, +1, e.kind});
        edges.push_back(Edge{e.t1_ns, -1, e.kind});
    }
    if (edges.empty()) return result;
    std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
        if (a.t != b.t) return a.t < b.t;
        return a.delta > b.delta;  // opens before closes: counts never dip below 0
    });
    std::map<PhaseKind, int> active;
    int distinct = 0;
    int total_active = 0;
    std::int64_t prev_t = edges.front().t;
    std::int64_t idle_since = INT64_MIN;  // start of the current all-idle window
    for (const Edge& edge : edges) {
        const std::int64_t dt = edge.t - prev_t;
        if (dt > 0) {
            if (distinct >= 2) result.overlap_ns += dt;
            prev_t = edge.t;
        }
        int& count = active[edge.kind];
        if (edge.delta > 0) {
            if (total_active == 0 && idle_since != INT64_MIN) {
                // An idle window ends only when work actually starts, so an
                // instantaneous timestamp inside the gap cannot split it.
                result.largest_idle_gap_ns =
                    std::max(result.largest_idle_gap_ns, edge.t - idle_since);
            }
            if (count == 0) ++distinct;
            ++count;
            ++total_active;
        } else {
            --count;
            --total_active;
            DFAMR_ASSERT(count >= 0 && total_active >= 0);
            if (count == 0) --distinct;
            if (total_active == 0) idle_since = edge.t;
        }
    }
    return result;
}

std::string Tracer::to_csv() const {
    std::ostringstream os;
    os << "rank,worker,start_ns,end_ns,kind\n";
    for (const TraceEvent& e : sorted_events()) {
        os << e.rank << ',' << e.worker << ',' << e.t0_ns << ',' << e.t1_ns << ','
           << to_string(e.kind) << '\n';
    }
    return os.str();
}

std::string Tracer::to_chrome_json() const {
    const std::vector<TraceEvent> events = sorted_events();
    const std::vector<CounterSample> counters = sorted_counters();

    // Shift timestamps so the trace starts near zero (Perfetto renders
    // steady-clock epochs poorly) and express them in microseconds, the
    // unit of the Chrome trace-event format.
    std::int64_t base = INT64_MAX;
    for (const TraceEvent& e : events) base = std::min(base, e.t0_ns);
    for (const CounterSample& c : counters) base = std::min(base, c.t_ns);
    if (base == INT64_MAX) base = 0;
    const auto us = [base](std::int64_t t_ns) {
        return static_cast<double>(t_ns - base) * 1e-3;
    };
    // Progress lanes render as the last track of their process.
    constexpr int kProgressTid = 1000000;
    const auto tid_of = [](int worker) { return worker == kProgressWorker ? kProgressTid : worker; };

    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(3);
    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    bool first = true;
    const auto sep = [&] {
        if (!first) os << ",";
        first = false;
        os << "\n";
    };

    // Metadata: one process per rank, one named thread per (rank, worker).
    std::set<int> ranks;
    std::set<std::pair<int, int>> lanes;
    for (const TraceEvent& e : events) {
        ranks.insert(e.rank);
        lanes.emplace(e.rank, e.worker);
    }
    for (const CounterSample& c : counters) ranks.insert(c.rank);
    for (int rank : ranks) {
        sep();
        os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << rank
           << ",\"args\":{\"name\":\"rank " << rank << "\"}}";
        sep();
        os << "{\"ph\":\"M\",\"name\":\"process_sort_index\",\"pid\":" << rank
           << ",\"args\":{\"sort_index\":" << rank << "}}";
    }
    for (const auto& [rank, worker] : lanes) {
        const bool progress = worker == kProgressWorker;
        sep();
        // Lane 0 is the rank's main thread by project convention; runtime
        // worker w records under lane w + 1 (see DriverBase::worker_index).
        const std::string lane_name = progress  ? std::string("net progress")
                                      : worker == 0 ? std::string("main")
                                                    : "worker " + std::to_string(worker - 1);
        os << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" << rank
           << ",\"tid\":" << tid_of(worker) << ",\"args\":{\"name\":\"" << lane_name << "\"}}";
        sep();
        os << "{\"ph\":\"M\",\"name\":\"thread_sort_index\",\"pid\":" << rank
           << ",\"tid\":" << tid_of(worker) << ",\"args\":{\"sort_index\":" << tid_of(worker)
           << "}}";
    }

    // Complete ("X") events: one per recorded interval, phase kind as both
    // the slice name and its category (Perfetto can filter/color by cat).
    for (const TraceEvent& e : events) {
        const std::string kind = to_string(e.kind);
        sep();
        os << "{\"ph\":\"X\",\"name\":\"" << kind << "\",\"cat\":\"" << kind
           << "\",\"pid\":" << e.rank << ",\"tid\":" << tid_of(e.worker) << ",\"ts\":" << us(e.t0_ns)
           << ",\"dur\":" << us(e.t1_ns) - us(e.t0_ns) << "}";
    }

    // Counter ("C") events: scheduler telemetry interleaved per rank.
    for (const CounterSample& c : counters) {
        sep();
        os << "{\"ph\":\"C\",\"name\":\"" << c.name << "\",\"cat\":\"scheduler\",\"pid\":" << c.rank
           << ",\"ts\":" << us(c.t_ns) << ",\"args\":{\"value\":" << c.value << "}}";
    }
    os << "\n]}\n";
    return os.str();
}

void Tracer::clear() {
    std::lock_guard lock(mutex_);
    logs_.clear();
    counters_.clear();
    // Invalidate every thread's fast-path cache: their ThreadLog is gone.
    epoch_.fetch_add(1, std::memory_order_acq_rel);
}

}  // namespace dfamr::amr
