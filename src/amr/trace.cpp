#include "amr/trace.hpp"

#include <algorithm>
#include <set>
#include <sstream>

namespace dfamr::amr {

std::string to_string(PhaseKind k) {
    switch (k) {
        case PhaseKind::Stencil: return "stencil";
        case PhaseKind::Pack: return "pack";
        case PhaseKind::Send: return "send";
        case PhaseKind::Recv: return "recv";
        case PhaseKind::Unpack: return "unpack";
        case PhaseKind::IntraCopy: return "intra_copy";
        case PhaseKind::ChecksumLocal: return "checksum_local";
        case PhaseKind::ChecksumReduce: return "checksum_reduce";
        case PhaseKind::RefineSplit: return "refine_split";
        case PhaseKind::RefineMerge: return "refine_merge";
        case PhaseKind::RefineExchange: return "refine_exchange";
        case PhaseKind::LoadBalance: return "load_balance";
        case PhaseKind::CommWait: return "comm_wait";
        case PhaseKind::Control: return "control";
        case PhaseKind::Retry: return "retry";
        case PhaseKind::NetProgress: return "net_progress";
    }
    return "unknown";
}

bool is_refine_phase(PhaseKind k) {
    return k == PhaseKind::RefineSplit || k == PhaseKind::RefineMerge ||
           k == PhaseKind::RefineExchange || k == PhaseKind::LoadBalance;
}

void Tracer::record(int rank, int worker, std::int64_t t0_ns, std::int64_t t1_ns, PhaseKind kind) {
    if (!enabled_) return;
    std::lock_guard lock(mutex_);
    events_.push_back(TraceEvent{rank, worker, t0_ns, t1_ns, kind});
}

std::vector<TraceEvent> Tracer::sorted_events() const {
    std::vector<TraceEvent> events;
    {
        std::lock_guard lock(mutex_);
        events = events_;
    }
    std::sort(events.begin(), events.end(), [](const TraceEvent& a, const TraceEvent& b) {
        if (a.t0_ns != b.t0_ns) return a.t0_ns < b.t0_ns;
        if (a.rank != b.rank) return a.rank < b.rank;
        return a.worker < b.worker;
    });
    return events;
}

TraceAnalysis Tracer::analyze() const {
    TraceAnalysis result;
    const std::vector<TraceEvent> events = sorted_events();
    if (events.empty()) return result;

    std::int64_t t_min = events.front().t0_ns, t_max = 0;
    std::set<std::pair<int, int>> cores;
    std::int64_t refine_min = INT64_MAX, refine_max = INT64_MIN;
    for (const TraceEvent& e : events) {
        t_min = std::min(t_min, e.t0_ns);
        t_max = std::max(t_max, e.t1_ns);
        result.busy_ns_by_kind[e.kind] += e.t1_ns - e.t0_ns;
        result.busy_ns += e.t1_ns - e.t0_ns;
        cores.emplace(e.rank, e.worker);
        if (is_refine_phase(e.kind)) {
            refine_min = std::min(refine_min, e.t0_ns);
            refine_max = std::max(refine_max, e.t1_ns);
        }
    }
    result.span_ns = t_max - t_min;
    result.cores = static_cast<int>(cores.size());
    if (result.span_ns > 0 && result.cores > 0) {
        result.utilization = static_cast<double>(result.busy_ns) /
                             (static_cast<double>(result.span_ns) * result.cores);
    }
    result.refine_span_ns = refine_max >= refine_min ? refine_max - refine_min : 0;

    // Sweep line: count active events per kind to find (a) intervals where at
    // least two *distinct* kinds execute concurrently and (b) all-idle gaps.
    struct Edge {
        std::int64_t t;
        int delta;  // +1 open, -1 close
        PhaseKind kind;
    };
    std::vector<Edge> edges;
    edges.reserve(events.size() * 2);
    for (const TraceEvent& e : events) {
        edges.push_back(Edge{e.t0_ns, +1, e.kind});
        edges.push_back(Edge{e.t1_ns, -1, e.kind});
    }
    std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
        if (a.t != b.t) return a.t < b.t;
        return a.delta < b.delta;  // close before open at equal times
    });
    std::map<PhaseKind, int> active;
    int distinct = 0;
    int total_active = 0;
    std::int64_t prev_t = edges.front().t;
    for (const Edge& edge : edges) {
        const std::int64_t dt = edge.t - prev_t;
        if (dt > 0) {
            if (distinct >= 2) result.overlap_ns += dt;
            if (total_active == 0) {
                result.largest_idle_gap_ns = std::max(result.largest_idle_gap_ns, dt);
            }
            prev_t = edge.t;
        }
        int& count = active[edge.kind];
        if (edge.delta > 0) {
            if (count == 0) ++distinct;
            ++count;
            ++total_active;
        } else {
            --count;
            --total_active;
            if (count == 0) --distinct;
        }
    }
    return result;
}

std::string Tracer::to_csv() const {
    std::ostringstream os;
    os << "rank,worker,start_ns,end_ns,kind\n";
    for (const TraceEvent& e : sorted_events()) {
        os << e.rank << ',' << e.worker << ',' << e.t0_ns << ',' << e.t1_ns << ','
           << to_string(e.kind) << '\n';
    }
    return os.str();
}

void Tracer::clear() {
    std::lock_guard lock(mutex_);
    events_.clear();
}

}  // namespace dfamr::amr
