// Per-rank mesh state: the blocks this rank owns (with cell data), plus the
// replicated global structure. Variant drivers (src/core) orchestrate
// communication and compute phases on top of these primitives.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "amr/block.hpp"
#include "amr/comm_plan.hpp"
#include "amr/config.hpp"
#include "amr/structure.hpp"

namespace dfamr::amr {

class Mesh {
public:
    Mesh(const Config& cfg, int rank);

    const Config& config() const { return cfg_; }
    int rank() const { return rank_; }
    const BlockShape& shape() const { return shape_; }
    GlobalStructure& structure() { return structure_; }
    const GlobalStructure& structure() const { return structure_; }

    /// Allocates and initializes this rank's level-0 blocks.
    void init_blocks();

    bool owns(const BlockKey& key) const { return blocks_.count(key) != 0; }
    Block& block(const BlockKey& key);
    const Block& block(const BlockKey& key) const;
    std::size_t num_owned() const { return blocks_.size(); }
    /// Owned keys in deterministic (sorted) order.
    std::vector<BlockKey> owned_keys() const;

    /// Inserts an externally produced block (refinement/LB transfers).
    void adopt(std::unique_ptr<Block> b);
    /// Drops all owned blocks (checkpoint restore replaces them wholesale).
    void clear_blocks() { blocks_.clear(); }
    /// Removes a block and returns it (for transfers to another rank).
    std::unique_ptr<Block> release(const BlockKey& key);
    /// Creates an empty (zeroed) block for receiving remote data.
    std::unique_ptr<Block> make_block(const BlockKey& key) const;

    // --- local refinement data operations ---------------------------------
    /// Splits an owned block into its 8 children (2x replication per axis).
    /// The parent is removed; children become owned.
    void split_block(const BlockKey& parent);
    /// Merges 8 owned children into the parent (2x2x2 averaging).
    void merge_children(const BlockKey& parent);

    /// Sum over owned blocks of the variable range (local checksum half).
    double local_checksum(int var_begin, int var_end) const;

    /// Total FLOPs a full-mesh stencil sweep over one variable costs this
    /// rank (bookkeeping for throughput reports).
    std::int64_t flops_per_var_sweep() const;

private:
    Config cfg_;
    int rank_;
    BlockShape shape_;
    GlobalStructure structure_;
    std::map<BlockKey, std::unique_ptr<Block>> blocks_;
};

/// Ghost-exchange communication buffers for one rank.
///
/// The reference miniAMR shares one send/recv buffer pair across the three
/// directions, which creates false dependencies between directions when the
/// communication is taskified; the paper's --separate_buffers option
/// allocates one pair per direction (§IV-A). Buffers are laid out per
/// neighbor using the CommPlan stream offsets, scaled by the variable-group
/// size.
class CommBuffers {
public:
    CommBuffers() = default;
    /// `group_vars` = maximum variables per communication group.
    CommBuffers(const CommPlan& plan, int group_vars, bool separate_buffers);

    /// Send/recv stream for (direction, neighbor index within direction).
    std::span<double> send_stream(int direction, int neighbor_index);
    std::span<double> recv_stream(int direction, int neighbor_index);

private:
    struct DirStorage {
        std::vector<std::size_t> send_offsets;  // per neighbor index
        std::vector<std::size_t> recv_offsets;
        std::vector<std::size_t> send_sizes;
        std::vector<std::size_t> recv_sizes;
        std::vector<double> send;
        std::vector<double> recv;
    };
    bool separate_ = false;
    std::array<DirStorage, 3> dirs_;
    int storage_index(int direction) const { return separate_ ? direction : 0; }
};

}  // namespace dfamr::amr
