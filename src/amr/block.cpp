#include "amr/block.hpp"

#include <cmath>

#include "amr/scratch.hpp"
#include "common/error.hpp"

namespace dfamr::amr {

namespace {

/// Deterministic cell field: hash of the quantized physical position and the
/// variable index, mapped to [1, 2). Identical across variants and
/// decompositions by construction.
double field_value(int var, const Vec3d& pos, std::uint64_t seed) {
    auto mix = [](std::uint64_t x) {
        x += 0x9e3779b97f4a7c15ull;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
        return x ^ (x >> 31);
    };
    constexpr double kScale = 1 << 20;
    std::uint64_t h = seed;
    h = mix(h ^ static_cast<std::uint64_t>(var));
    h = mix(h ^ static_cast<std::uint64_t>(std::llround(pos.x * kScale)));
    h = mix(h ^ static_cast<std::uint64_t>(std::llround(pos.y * kScale)));
    h = mix(h ^ static_cast<std::uint64_t>(std::llround(pos.z * kScale)));
    return 1.0 + static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

BlockKey BlockKey::child(int octant, int max_level) const {
    DFAMR_ASSERT(level < max_level && octant >= 0 && octant < 8);
    const std::int64_t half = side(max_level) / 2;
    BlockKey c;
    c.level = level + 1;
    c.anchor = {anchor.x + ((octant & 1) ? half : 0), anchor.y + ((octant & 2) ? half : 0),
                anchor.z + ((octant & 4) ? half : 0)};
    return c;
}

BlockKey BlockKey::parent(int max_level) const {
    DFAMR_ASSERT(level > 0);
    const std::int64_t parent_side = side(max_level) * 2;
    BlockKey p;
    p.level = level - 1;
    p.anchor = {(anchor.x / parent_side) * parent_side, (anchor.y / parent_side) * parent_side,
                (anchor.z / parent_side) * parent_side};
    return p;
}

int BlockKey::octant_in_parent(int max_level) const {
    const std::int64_t s = side(max_level);
    const BlockKey p = parent(max_level);
    int o = 0;
    if (anchor.x - p.anchor.x >= s) o |= 1;
    if (anchor.y - p.anchor.y >= s) o |= 2;
    if (anchor.z - p.anchor.z >= s) o |= 4;
    return o;
}

Block::Block(BlockKey key, const BlockShape& shape)
    : key_(key), shape_(shape), data_(static_cast<std::size_t>(shape.total_cells()), 0.0) {
    DFAMR_REQUIRE(shape.nx > 0 && shape.ny > 0 && shape.nz > 0 && shape.num_vars > 0,
                  "invalid block shape");
}

std::int64_t Block::index(int var, int x, int y, int z) const {
    return var * shape_.stride_var() + x * shape_.stride_x() + y * shape_.stride_y() + z;
}

double& Block::at(int var, int x, int y, int z) {
    return data_[static_cast<std::size_t>(index(var, x, y, z))];
}
double Block::at(int var, int x, int y, int z) const {
    return data_[static_cast<std::size_t>(index(var, x, y, z))];
}

std::span<double> Block::group_span(int var_begin, int var_end) {
    return {data_.data() + var_begin * shape_.stride_var(),
            static_cast<std::size_t>((var_end - var_begin) * shape_.stride_var())};
}
std::span<const double> Block::group_span(int var_begin, int var_end) const {
    return {data_.data() + var_begin * shape_.stride_var(),
            static_cast<std::size_t>((var_end - var_begin) * shape_.stride_var())};
}

void Block::init_cells(const Box& box, std::uint64_t seed) {
    const Vec3d ext = box.extent();
    const Vec3d cell{ext.x / shape_.nx, ext.y / shape_.ny, ext.z / shape_.nz};
    for (int v = 0; v < shape_.num_vars; ++v) {
        for (int x = 1; x <= shape_.nx; ++x) {
            for (int y = 1; y <= shape_.ny; ++y) {
                for (int z = 1; z <= shape_.nz; ++z) {
                    const Vec3d pos{box.lo.x + (x - 0.5) * cell.x, box.lo.y + (y - 0.5) * cell.y,
                                    box.lo.z + (z - 0.5) * cell.z};
                    at(v, x, y, z) = field_value(v, pos, seed);
                }
            }
        }
    }
}

std::int64_t Block::face_value_count(const FaceGeom& g, int vars) const {
    return g.rel == FaceRel::Same ? shape_.face_values_same(g.axis, vars)
                                  : shape_.face_values_mixed(g.axis, vars);
}

namespace {
/// Maps (plane coordinate a, in-plane coordinates u, v) to (x, y, z).
struct PlaneIndexer {
    int axis;
    int ua, va;  // the two in-plane axes

    Vec3i coords(int a, int u, int v) const {
        Vec3i c;
        c[axis] = a;
        c[ua] = u;
        c[va] = v;
        return c;
    }
};

PlaneIndexer plane_indexer(const BlockShape& shape, int axis) {
    const auto [u, v] = shape.plane_axes(axis);
    return PlaneIndexer{axis, u, v};
}
}  // namespace

void Block::pack_face(const FaceGeom& g, int var_begin, int var_end, std::span<double> out) const {
    const PlaneIndexer pi = plane_indexer(shape_, g.axis);
    const int U = shape_.dim(pi.ua), V = shape_.dim(pi.va);
    const int a = g.sense > 0 ? shape_.dim(g.axis) : 1;  // interior boundary plane
    DFAMR_REQUIRE(static_cast<std::int64_t>(out.size()) == face_value_count(g, var_end - var_begin),
                  "pack_face: wrong buffer size");
    std::size_t o = 0;
    for (int var = var_begin; var < var_end; ++var) {
        switch (g.rel) {
            case FaceRel::Same:
                for (int u = 1; u <= U; ++u) {
                    for (int v = 1; v <= V; ++v) {
                        const Vec3i c = pi.coords(a, u, v);
                        out[o++] = at(var, c.x, c.y, c.z);
                    }
                }
                break;
            case FaceRel::Coarser:  // receiver coarser: restrict my whole face
                for (int u = 0; u < U / 2; ++u) {
                    for (int v = 0; v < V / 2; ++v) {
                        double sum = 0;
                        for (int du = 1; du <= 2; ++du) {
                            for (int dv = 1; dv <= 2; ++dv) {
                                const Vec3i c = pi.coords(a, 2 * u + du, 2 * v + dv);
                                sum += at(var, c.x, c.y, c.z);
                            }
                        }
                        out[o++] = 0.25 * sum;
                    }
                }
                break;
            case FaceRel::Finer: {  // receiver finer: send quarter `quad` raw
                const int qu = (g.quad & 1) * (U / 2);
                const int qv = ((g.quad >> 1) & 1) * (V / 2);
                for (int u = 0; u < U / 2; ++u) {
                    for (int v = 0; v < V / 2; ++v) {
                        const Vec3i c = pi.coords(a, qu + u + 1, qv + v + 1);
                        out[o++] = at(var, c.x, c.y, c.z);
                    }
                }
                break;
            }
        }
    }
}

void Block::unpack_face(const FaceGeom& g, int var_begin, int var_end,
                        std::span<const double> in) {
    const PlaneIndexer pi = plane_indexer(shape_, g.axis);
    const int U = shape_.dim(pi.ua), V = shape_.dim(pi.va);
    const int a = g.sense > 0 ? shape_.dim(g.axis) + 1 : 0;  // ghost plane
    DFAMR_REQUIRE(static_cast<std::int64_t>(in.size()) == face_value_count(g, var_end - var_begin),
                  "unpack_face: wrong buffer size");
    std::size_t o = 0;
    for (int var = var_begin; var < var_end; ++var) {
        switch (g.rel) {
            case FaceRel::Same:
                for (int u = 1; u <= U; ++u) {
                    for (int v = 1; v <= V; ++v) {
                        const Vec3i c = pi.coords(a, u, v);
                        at(var, c.x, c.y, c.z) = in[o++];
                    }
                }
                break;
            case FaceRel::Coarser:  // sender coarser: prolong onto my ghosts
                for (int u = 1; u <= U; ++u) {
                    for (int v = 1; v <= V; ++v) {
                        const std::size_t src = o + static_cast<std::size_t>(((u - 1) / 2) * (V / 2) +
                                                                             (v - 1) / 2);
                        const Vec3i c = pi.coords(a, u, v);
                        at(var, c.x, c.y, c.z) = in[src];
                    }
                }
                o += static_cast<std::size_t>((U / 2) * (V / 2));
                break;
            case FaceRel::Finer: {  // sender finer: place into quarter `quad`
                const int qu = (g.quad & 1) * (U / 2);
                const int qv = ((g.quad >> 1) & 1) * (V / 2);
                for (int u = 0; u < U / 2; ++u) {
                    for (int v = 0; v < V / 2; ++v) {
                        const Vec3i c = pi.coords(a, qu + u + 1, qv + v + 1);
                        at(var, c.x, c.y, c.z) = in[o++];
                    }
                }
                break;
            }
        }
    }
}

void Block::pack_face(const FaceGeom& g, int var_begin, int var_end,
                      std::span<std::byte> out) const {
    DFAMR_REQUIRE(reinterpret_cast<std::uintptr_t>(out.data()) % alignof(double) == 0,
                  "pack_face: view not 8-byte aligned");
    DFAMR_REQUIRE(out.size() % sizeof(double) == 0, "pack_face: view not a whole number of doubles");
    pack_face(g, var_begin, var_end,
              std::span<double>(reinterpret_cast<double*>(out.data()),
                                out.size() / sizeof(double)));
}

void Block::unpack_face(const FaceGeom& g, int var_begin, int var_end,
                        std::span<const std::byte> in) {
    DFAMR_REQUIRE(reinterpret_cast<std::uintptr_t>(in.data()) % alignof(double) == 0,
                  "unpack_face: view not 8-byte aligned");
    DFAMR_REQUIRE(in.size() % sizeof(double) == 0,
                  "unpack_face: view not a whole number of doubles");
    unpack_face(g, var_begin, var_end,
                std::span<const double>(reinterpret_cast<const double*>(in.data()),
                                        in.size() / sizeof(double)));
}

void Block::copy_face_from(const Block& src, const FaceGeom& g, int var_begin, int var_end) {
    // `g` is my view (rel = neighbor's level vs mine, sense = side of me the
    // neighbor is on). pack_face takes the sender's view (rel = receiver's
    // level vs sender), so flip sense and the level relation; `quad` always
    // names the quarter of the coarser side's face and is shared.
    FaceGeom src_geom = g;
    src_geom.sense = -g.sense;
    if (g.rel == FaceRel::Coarser) {
        src_geom.rel = FaceRel::Finer;
    } else if (g.rel == FaceRel::Finer) {
        src_geom.rel = FaceRel::Coarser;
    }
    const std::int64_t n = face_value_count(g, var_end - var_begin);
    std::span<double> buf(tls_scratch(static_cast<std::size_t>(n)).data(),
                          static_cast<std::size_t>(n));
    src.pack_face(src_geom, var_begin, var_end, buf);
    unpack_face(g, var_begin, var_end, buf);
}

void Block::reflect_face(int axis, int sense, int var_begin, int var_end) {
    const PlaneIndexer pi = plane_indexer(shape_, axis);
    const int U = shape_.dim(pi.ua), V = shape_.dim(pi.va);
    const int a_ghost = sense > 0 ? shape_.dim(axis) + 1 : 0;
    const int a_int = sense > 0 ? shape_.dim(axis) : 1;
    for (int var = var_begin; var < var_end; ++var) {
        for (int u = 1; u <= U; ++u) {
            for (int v = 1; v <= V; ++v) {
                const Vec3i cg = pi.coords(a_ghost, u, v);
                const Vec3i ci = pi.coords(a_int, u, v);
                at(var, cg.x, cg.y, cg.z) = at(var, ci.x, ci.y, ci.z);
            }
        }
    }
}

void Block::fill_from_parent(const Block& parent, int octant) {
    const int ox = (octant & 1) * (shape_.nx / 2);
    const int oy = ((octant >> 1) & 1) * (shape_.ny / 2);
    const int oz = ((octant >> 2) & 1) * (shape_.nz / 2);
    for (int v = 0; v < shape_.num_vars; ++v) {
        for (int x = 1; x <= shape_.nx; ++x) {
            const int px = ox + (x + 1) / 2;
            for (int y = 1; y <= shape_.ny; ++y) {
                const int py = oy + (y + 1) / 2;
                for (int z = 1; z <= shape_.nz; ++z) {
                    const int pz = oz + (z + 1) / 2;
                    at(v, x, y, z) = parent.at(v, px, py, pz);
                }
            }
        }
    }
}

void Block::absorb_child(const Block& child, int octant) {
    const int ox = (octant & 1) * (shape_.nx / 2);
    const int oy = ((octant >> 1) & 1) * (shape_.ny / 2);
    const int oz = ((octant >> 2) & 1) * (shape_.nz / 2);
    // Zero my octant region, then accumulate the average of 2x2x2 children.
    for (int v = 0; v < shape_.num_vars; ++v) {
        for (int x = 1; x <= shape_.nx / 2; ++x) {
            for (int y = 1; y <= shape_.ny / 2; ++y) {
                for (int z = 1; z <= shape_.nz / 2; ++z) {
                    at(v, ox + x, oy + y, oz + z) = 0.0;
                }
            }
        }
        for (int x = 1; x <= shape_.nx; ++x) {
            const int px = ox + (x + 1) / 2;
            for (int y = 1; y <= shape_.ny; ++y) {
                const int py = oy + (y + 1) / 2;
                for (int z = 1; z <= shape_.nz; ++z) {
                    const int pz = oz + (z + 1) / 2;
                    at(v, px, py, pz) += 0.125 * child.at(v, x, y, z);
                }
            }
        }
    }
}

std::int64_t Block::stencil7(int var_begin, int var_end) {
    // Rolling two-plane scratch: plane x's stencil reads original planes
    // x-1..x+1, so plane x-1's result can be written back as soon as plane x
    // has been computed. One pass over the block instead of
    // compute-everything-then-copy-back, and the scratch shrinks from a full
    // variable to two interior planes. The per-cell expression (including
    // the / 7.0 — 1/7 is not exactly representable, a multiplication would
    // change results) is unchanged, so checksums stay bit-identical.
    const std::size_t plane = static_cast<std::size_t>(shape_.ny) * shape_.nz;
    std::vector<double>& scratch = tls_scratch(2 * plane);
    const auto cell = [&](std::size_t buf, int y, int z) -> double& {
        return scratch[buf * plane + static_cast<std::size_t>(y - 1) * shape_.nz + (z - 1)];
    };
    const auto write_back = [&](int v, int x) {
        const std::size_t buf = static_cast<std::size_t>(x & 1);
        for (int y = 1; y <= shape_.ny; ++y) {
            for (int z = 1; z <= shape_.nz; ++z) {
                at(v, x, y, z) = cell(buf, y, z);
            }
        }
    };
    for (int v = var_begin; v < var_end; ++v) {
        for (int x = 1; x <= shape_.nx; ++x) {
            const std::size_t buf = static_cast<std::size_t>(x & 1);
            for (int y = 1; y <= shape_.ny; ++y) {
                for (int z = 1; z <= shape_.nz; ++z) {
                    cell(buf, y, z) =
                        (at(v, x - 1, y, z) + at(v, x + 1, y, z) + at(v, x, y - 1, z) +
                         at(v, x, y + 1, z) + at(v, x, y, z - 1) + at(v, x, y, z + 1) +
                         at(v, x, y, z)) /
                        7.0;
                }
            }
            if (x > 1) write_back(v, x - 1);
        }
        write_back(v, shape_.nx);
    }
    // miniAMR accounting: 7 floating-point operations per cell per variable.
    return 7 * static_cast<std::int64_t>(shape_.nx) * shape_.ny * shape_.nz *
           (var_end - var_begin);
}

void Block::fill_ghost_edges(int var) {
    // Face exchange fills face ghosts only; the 27-point stencil also reads
    // edge and corner ghosts. Fill them block-locally by clamping to the
    // nearest valid cell (deterministic and identical across variants).
    auto clamp1 = [](int c, int n) { return c < 1 ? 1 : (c > n ? n : c); };
    for (int x = 0; x <= shape_.nx + 1; ++x) {
        const bool ox = x < 1 || x > shape_.nx;
        for (int y = 0; y <= shape_.ny + 1; ++y) {
            const bool oy = y < 1 || y > shape_.ny;
            for (int z = 0; z <= shape_.nz + 1; ++z) {
                const bool oz = z < 1 || z > shape_.nz;
                if (static_cast<int>(ox) + static_cast<int>(oy) + static_cast<int>(oz) >= 2) {
                    at(var, x, y, z) =
                        at(var, clamp1(x, shape_.nx), clamp1(y, shape_.ny), clamp1(z, shape_.nz));
                }
            }
        }
    }
}

std::int64_t Block::stencil27(int var_begin, int var_end) {
    // Same rolling two-plane fusion as stencil7 (the 27-point stencil also
    // only reads planes x-1..x+1). The accumulation order and the / 27.0
    // are unchanged — bit-identical results.
    const std::size_t plane = static_cast<std::size_t>(shape_.ny) * shape_.nz;
    std::vector<double>& scratch = tls_scratch(2 * plane);
    const auto cell = [&](std::size_t buf, int y, int z) -> double& {
        return scratch[buf * plane + static_cast<std::size_t>(y - 1) * shape_.nz + (z - 1)];
    };
    const auto write_back = [&](int v, int x) {
        const std::size_t buf = static_cast<std::size_t>(x & 1);
        for (int y = 1; y <= shape_.ny; ++y) {
            for (int z = 1; z <= shape_.nz; ++z) {
                at(v, x, y, z) = cell(buf, y, z);
            }
        }
    };
    for (int v = var_begin; v < var_end; ++v) fill_ghost_edges(v);
    for (int v = var_begin; v < var_end; ++v) {
        for (int x = 1; x <= shape_.nx; ++x) {
            const std::size_t buf = static_cast<std::size_t>(x & 1);
            for (int y = 1; y <= shape_.ny; ++y) {
                for (int z = 1; z <= shape_.nz; ++z) {
                    double sum = 0;
                    for (int dx = -1; dx <= 1; ++dx) {
                        for (int dy = -1; dy <= 1; ++dy) {
                            for (int dz = -1; dz <= 1; ++dz) {
                                sum += at(v, x + dx, y + dy, z + dz);
                            }
                        }
                    }
                    cell(buf, y, z) = sum / 27.0;
                }
            }
            if (x > 1) write_back(v, x - 1);
        }
        write_back(v, shape_.nx);
    }
    return 27 * static_cast<std::int64_t>(shape_.nx) * shape_.ny * shape_.nz *
           (var_end - var_begin);
}

double Block::checksum(int var_begin, int var_end) const {
    double sum = 0;
    for (int v = var_begin; v < var_end; ++v) {
        for (int x = 1; x <= shape_.nx; ++x) {
            for (int y = 1; y <= shape_.ny; ++y) {
                for (int z = 1; z <= shape_.nz; ++z) {
                    sum += at(v, x, y, z);
                }
            }
        }
    }
    return sum;
}

}  // namespace dfamr::amr
