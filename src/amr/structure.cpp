#include "amr/structure.hpp"

#include <algorithm>
#include <deque>

#include "common/error.hpp"

namespace dfamr::amr {

GlobalStructure::GlobalStructure(const Config& cfg)
    : max_level_(cfg.num_refine), num_ranks_(cfg.num_ranks()) {
    level0_blocks_ = {cfg.npx * cfg.init_x, cfg.npy * cfg.init_y, cfg.npz * cfg.init_z};
    const std::int64_t side0 = std::int64_t{1} << max_level_;
    domain_units_ = {level0_blocks_.x * side0, level0_blocks_.y * side0,
                     level0_blocks_.z * side0};
    for (int bx = 0; bx < level0_blocks_.x; ++bx) {
        for (int by = 0; by < level0_blocks_.y; ++by) {
            for (int bz = 0; bz < level0_blocks_.z; ++bz) {
                const int rx = bx / cfg.init_x;
                const int ry = by / cfg.init_y;
                const int rz = bz / cfg.init_z;
                const int rank = rx + cfg.npx * (ry + cfg.npy * rz);
                BlockKey key;
                key.level = 0;
                key.anchor = {bx * side0, by * side0, bz * side0};
                owners_.emplace(key, rank);
            }
        }
    }
}

int GlobalStructure::owner(const BlockKey& key) const {
    auto it = owners_.find(key);
    DFAMR_REQUIRE(it != owners_.end(), "block is not a leaf of the current structure");
    return it->second;
}

std::vector<BlockKey> GlobalStructure::blocks_of(int rank) const {
    std::vector<BlockKey> result;
    for (const auto& [key, owner_rank] : owners_) {
        if (owner_rank == rank) result.push_back(key);
    }
    return result;
}

std::vector<std::int64_t> GlobalStructure::blocks_per_rank() const {
    std::vector<std::int64_t> counts(static_cast<std::size_t>(num_ranks_), 0);
    for (const auto& [key, owner_rank] : owners_) {
        ++counts[static_cast<std::size_t>(owner_rank)];
    }
    return counts;
}

Box GlobalStructure::box(const BlockKey& key) const {
    const std::int64_t side = key.side(max_level_);
    Box b;
    for (int a = 0; a < 3; ++a) {
        const double du = static_cast<double>(domain_units_[a]);
        b.lo[a] = static_cast<double>(key.anchor[a]) / du;
        b.hi[a] = static_cast<double>(key.anchor[a] + side) / du;
    }
    return b;
}

bool GlobalStructure::at_domain_boundary(const BlockKey& key, int axis, int sense) const {
    const std::int64_t side = key.side(max_level_);
    if (sense > 0) return key.anchor[axis] + side >= domain_units_[axis];
    return key.anchor[axis] == 0;
}

std::vector<FaceNeighbor> GlobalStructure::face_neighbors(const BlockKey& key, int axis,
                                                          int sense) const {
    std::vector<FaceNeighbor> result;
    if (at_domain_boundary(key, axis, sense)) return result;

    const std::int64_t side = key.side(max_level_);
    const auto [ua, va] = BlockShape{2, 2, 2, 1}.plane_axes(axis);

    // Same level.
    BlockKey same = key;
    same.anchor[axis] += sense > 0 ? side : -side;
    if (auto it = owners_.find(same); it != owners_.end()) {
        result.push_back(FaceNeighbor{same, it->second, FaceRel::Same, 0});
        return result;
    }

    // Coarser (level - 1): the block containing the cell just across the face.
    if (key.level > 0) {
        const std::int64_t cside = side * 2;
        Vec3l probe = key.anchor;
        probe[axis] += sense > 0 ? side : -1;
        BlockKey coarse;
        coarse.level = key.level - 1;
        coarse.anchor = {(probe.x / cside) * cside, (probe.y / cside) * cside,
                         (probe.z / cside) * cside};
        if (auto it = owners_.find(coarse); it != owners_.end()) {
            const int qu = static_cast<int>((key.anchor[ua] - coarse.anchor[ua]) / side) & 1;
            const int qv = static_cast<int>((key.anchor[va] - coarse.anchor[va]) / side) & 1;
            result.push_back(FaceNeighbor{coarse, it->second, FaceRel::Coarser, qu + 2 * qv});
            return result;
        }
    }

    // Finer (level + 1): up to four quarter-face neighbors.
    if (key.level < max_level_) {
        const std::int64_t fside = side / 2;
        for (int qv = 0; qv < 2; ++qv) {
            for (int qu = 0; qu < 2; ++qu) {
                BlockKey fine;
                fine.level = key.level + 1;
                fine.anchor = key.anchor;
                fine.anchor[axis] += sense > 0 ? side : -fside;
                fine.anchor[ua] += qu * fside;
                fine.anchor[va] += qv * fside;
                auto it = owners_.find(fine);
                DFAMR_REQUIRE(it != owners_.end(),
                              "mesh structure violates the 2:1 constraint (missing neighbor)");
                result.push_back(FaceNeighbor{fine, it->second, FaceRel::Finer, qu + 2 * qv});
            }
        }
        return result;
    }
    throw Error("mesh structure inconsistent: no neighbor found across an interior face");
}

bool GlobalStructure::two_to_one_ok() const {
    try {
        for (const auto& [key, owner_rank] : owners_) {
            for (int axis = 0; axis < 3; ++axis) {
                for (int sense : {+1, -1}) {
                    (void)face_neighbors(key, axis, sense);
                }
            }
        }
    } catch (const Error&) {
        return false;
    }
    return true;
}

RefineRound GlobalStructure::plan_refine_round(const std::vector<ObjectSpec>& objects,
                                               bool uniform_refine) const {
    std::map<BlockKey, int> marks;  // +1 refine, -1 coarsen-willing, 0 stay
    for (const auto& [key, owner_rank] : owners_) {
        const Box b = box(key);
        bool touched = uniform_refine;
        for (const ObjectSpec& obj : objects) {
            if (obj.touches(b)) {
                touched = true;
                break;
            }
        }
        int mark = 0;
        if (touched && key.level < max_level_) {
            mark = +1;
        } else if (!touched && key.level > 0) {
            mark = -1;
        }
        marks.emplace(key, mark);
    }
    return plan_refine_round_marks(std::move(marks));
}

RefineRound GlobalStructure::plan_refine_round_marks(std::map<BlockKey, int> marks) const {
    DFAMR_REQUIRE(marks.size() == owners_.size(), "marks must cover exactly the current leaves");

    // 2:1 propagation: a refining block forces its coarser face neighbors to
    // refine as well (otherwise its children would differ by two levels).
    std::deque<BlockKey> worklist;
    for (const auto& [key, mark] : marks) {
        if (mark == +1) worklist.push_back(key);
    }
    while (!worklist.empty()) {
        const BlockKey key = worklist.front();
        worklist.pop_front();
        for (int axis = 0; axis < 3; ++axis) {
            for (int sense : {+1, -1}) {
                for (const FaceNeighbor& nb : face_neighbors(key, axis, sense)) {
                    if (nb.rel == FaceRel::Coarser && marks.at(nb.key) != +1) {
                        marks[nb.key] = +1;
                        worklist.push_back(nb.key);
                    }
                }
            }
        }
    }

    RefineRound round;
    for (const auto& [key, mark] : marks) {
        if (mark == +1) round.refine.push_back(key);
    }

    // Coarsening: group willing leaves by parent; all eight siblings must be
    // willing leaves, and the merged parent must still satisfy 2:1 against
    // every outward neighbor's post-round level (refines included,
    // other coarsenings conservatively ignored).
    std::map<BlockKey, int> willing_children;  // parent -> count
    for (const auto& [key, mark] : marks) {
        if (mark == -1) ++willing_children[key.parent(max_level_)];
    }
    for (const auto& [parent, count] : willing_children) {
        if (count != 8) continue;
        bool safe = true;
        const std::int64_t pside = parent.side(max_level_) / 2;  // child side
        (void)pside;
        for (int octant = 0; octant < 8 && safe; ++octant) {
            const BlockKey child = parent.child(octant, max_level_);
            for (int axis = 0; axis < 3 && safe; ++axis) {
                for (int sense : {+1, -1}) {
                    // Only outward faces of the parent region matter.
                    const BlockKey sibling_probe = [&] {
                        BlockKey s = child;
                        s.anchor[axis] += (sense > 0 ? child.side(max_level_)
                                                     : -child.side(max_level_));
                        return s;
                    }();
                    const bool inward =
                        sibling_probe.anchor[axis] >= parent.anchor[axis] &&
                        sibling_probe.anchor[axis] < parent.anchor[axis] + parent.side(max_level_);
                    if (inward) continue;
                    for (const FaceNeighbor& nb : face_neighbors(child, axis, sense)) {
                        const int post = nb.key.level + (marks.at(nb.key) == +1 ? 1 : 0);
                        if (post > parent.level + 1) {
                            safe = false;
                            break;
                        }
                    }
                    if (!safe) break;
                }
            }
        }
        if (safe) round.coarsen_parents.push_back(parent);
    }
    return round;
}

void GlobalStructure::apply_refine_round(const RefineRound& round) {
    for (const BlockKey& key : round.refine) {
        auto it = owners_.find(key);
        DFAMR_REQUIRE(it != owners_.end(), "refining a non-leaf block");
        const int rank = it->second;
        owners_.erase(it);
        for (int octant = 0; octant < 8; ++octant) {
            owners_.emplace(key.child(octant, max_level_), rank);
        }
    }
    for (const BlockKey& parent : round.coarsen_parents) {
        int new_owner = -1;
        for (int octant = 0; octant < 8; ++octant) {
            auto it = owners_.find(parent.child(octant, max_level_));
            DFAMR_REQUIRE(it != owners_.end(), "coarsening with a missing child");
            if (octant == 0) new_owner = it->second;
            owners_.erase(it);
        }
        owners_.emplace(parent, new_owner);
    }
}

double GlobalStructure::imbalance() const {
    const auto counts = blocks_per_rank();
    std::int64_t total = 0, max_count = 0;
    for (std::int64_t c : counts) {
        total += c;
        max_count = std::max(max_count, c);
    }
    const double avg = static_cast<double>(total) / static_cast<double>(num_ranks_);
    if (avg <= 0) return 0.0;
    return (static_cast<double>(max_count) - avg) / avg;
}

void GlobalStructure::rcb_recurse(std::vector<std::pair<Vec3d, BlockKey>>& blocks, std::size_t lo,
                                  std::size_t hi, int rank_lo, int rank_hi,
                                  std::map<BlockKey, int>& result) const {
    const int nranks = rank_hi - rank_lo;
    if (nranks <= 1 || hi - lo <= 1) {
        for (std::size_t i = lo; i < hi; ++i) result[blocks[i].second] = rank_lo;
        return;
    }
    // Longest extent of the centers' bounding box decides the cut axis.
    Vec3d mins = blocks[lo].first, maxs = blocks[lo].first;
    for (std::size_t i = lo + 1; i < hi; ++i) {
        for (int a = 0; a < 3; ++a) {
            mins[a] = std::min(mins[a], blocks[i].first[a]);
            maxs[a] = std::max(maxs[a], blocks[i].first[a]);
        }
    }
    int axis = 0;
    double best = -1;
    for (int a = 0; a < 3; ++a) {
        if (maxs[a] - mins[a] > best) {
            best = maxs[a] - mins[a];
            axis = a;
        }
    }
    const int left_ranks = nranks / 2;
    const std::size_t n = hi - lo;
    std::size_t left_n = (n * static_cast<std::size_t>(left_ranks) +
                          static_cast<std::size_t>(nranks) / 2) /
                         static_cast<std::size_t>(nranks);
    left_n = std::min(left_n, n);
    auto cmp = [axis](const std::pair<Vec3d, BlockKey>& a, const std::pair<Vec3d, BlockKey>& b) {
        if (a.first[axis] != b.first[axis]) return a.first[axis] < b.first[axis];
        return a.second < b.second;  // deterministic tie-break
    };
    std::nth_element(blocks.begin() + static_cast<std::ptrdiff_t>(lo),
                     blocks.begin() + static_cast<std::ptrdiff_t>(lo + left_n),
                     blocks.begin() + static_cast<std::ptrdiff_t>(hi), cmp);
    rcb_recurse(blocks, lo, lo + left_n, rank_lo, rank_lo + left_ranks, result);
    rcb_recurse(blocks, lo + left_n, hi, rank_lo + left_ranks, rank_hi, result);
}

std::map<BlockKey, int> GlobalStructure::rcb_partition() const {
    std::vector<std::pair<Vec3d, BlockKey>> blocks;
    blocks.reserve(owners_.size());
    for (const auto& [key, owner_rank] : owners_) {
        blocks.emplace_back(box(key).center(), key);
    }
    std::map<BlockKey, int> result;
    rcb_recurse(blocks, 0, blocks.size(), 0, num_ranks_, result);
    return result;
}

void GlobalStructure::set_owners(const std::map<BlockKey, int>& new_owners) {
    DFAMR_REQUIRE(new_owners.size() == owners_.size(),
                  "new ownership map must cover exactly the current leaves");
    for (auto& [key, owner_rank] : owners_) {
        auto it = new_owners.find(key);
        DFAMR_REQUIRE(it != new_owners.end(), "new ownership map misses a leaf");
        DFAMR_REQUIRE(it->second >= 0 && it->second < num_ranks_, "owner rank out of range");
        owner_rank = it->second;
    }
}

void GlobalStructure::restore_leaves(const std::map<BlockKey, int>& leaves) {
    DFAMR_REQUIRE(!leaves.empty(), "restored structure must have at least one leaf");
    for (const auto& [key, owner_rank] : leaves) {
        DFAMR_REQUIRE(key.level >= 0 && key.level <= max_level_,
                      "restored leaf level out of range");
        DFAMR_REQUIRE(owner_rank >= 0 && owner_rank < num_ranks_,
                      "restored owner rank out of range");
    }
    const std::map<BlockKey, int> previous = std::move(owners_);
    owners_ = leaves;
    if (!two_to_one_ok()) {
        owners_ = previous;
        DFAMR_REQUIRE(false, "restored structure violates the 2:1 invariant");
    }
}

}  // namespace dfamr::amr
