// Cost model for the discrete-event cluster simulation (the MareNostrum4
// substitute). Per-task costs are derived from the real kernels measured on
// the build host (calibrate()); network parameters default to values typical
// of a fat-tree EDR cluster like the paper's testbed.
//
// Honesty note (DESIGN.md §7): the data-flow variant's higher IPC — the
// paper attributes it to OmpSs-2's immediate-successor policy reusing warm
// caches — is modeled as `locality_speedup` applied to stencil tasks of the
// TAMPI+OSS variant. bench/locality_ablation reports the scaling results
// with the factor disabled.
#pragma once

#include <cstdint>

namespace dfamr::sim {

struct CostModel {
    // --- compute kernels (calibrated) -----------------------------------
    // The stencil sweep is memory-bound (~4 x 8B accesses per cell-var);
    // 6 ns/cell/var matches a ~5 GB/s-per-core effective stream, in line
    // with a fully-populated Xeon 8160 node and with calibrate() on typical
    // development hosts.
    double stencil_ns_per_cell_var = 6.0;
    double copy_ns_per_byte = 0.05;  // pack/unpack/split/merge copies
    double checksum_ns_per_cell_var = 1.5;

    // --- runtime/MPI overheads -------------------------------------------
    double task_overhead_ns = 400;   // per-task scheduling/creation overhead
    // Per-task overhead of the work-stealing tasking runtime (the tasking
    // variants' scheduler after the per-worker-deque rewrite). The old
    // global-mutex runtime serialized every submit/dispatch/completion on
    // one lock — its 400 ns above is the mutex-bound per-task cost at the
    // paper's 12 workers per rank. The work-stealing runtime has no global
    // serial section: bench/sched_micro measures ~380-590 ns total per task
    // on a 2-core host, but only the completion+dispatch slice rides each
    // worker's critical path (submission overlaps execution, and the
    // immediate-successor path — ~98% of stencil-chain handoffs in
    // sched_micro — hands tasks over without touching any queue). That
    // slice is what this constant models.
    double tasking_overhead_ns = 150;
    double mpi_call_ns = 300;        // posting an Isend/Irecv
    double control_ns_per_block = 2500;  // refinement marking/control per block
    double rcb_ns_per_block = 400;       // load-balance partitioning per block

    // --- network (LogGP-ish) ----------------------------------------------
    double alpha_ns = 1500;           // per-message latency
    double bytes_per_ns = 12.5;       // per-NIC bandwidth (12.5 B/ns = 12.5 GB/s)
    // Per-message occupancy of the sender NIC (the LogGP "gap"): makes many
    // small messages strictly worse than one aggregated message — the
    // Table II "all" penalty.
    double nic_gap_ns = 500;
    // Messages between ranks of the same node bypass the NIC but pay the
    // shared-memory MPI path (two copies + synchronization) — slower than
    // the direct memcpy the hybrid variants use for intra-rank faces.
    double intra_node_alpha_ns = 600;
    double intra_node_bytes_per_ns = 8.0;

    // --- modeled effects ----------------------------------------------------
    // IPC advantage of data-flow stencil tasks (immediate-successor
    // locality; the paper calls the increase "significant" — §V-B cause 4).
    double locality_speedup = 1.18;
    // Memory-bound kernel slowdown when a rank spans both NUMA domains.
    double numa_penalty = 1.30;

    std::int64_t compute_cost(double kernel_ns) const {
        return static_cast<std::int64_t>(kernel_ns + task_overhead_ns);
    }
    std::int64_t stencil_cost(std::int64_t cells, int vars, bool data_flow_locality) const {
        double ns = stencil_ns_per_cell_var * static_cast<double>(cells) * vars;
        if (data_flow_locality) ns /= locality_speedup;
        return compute_cost(ns);
    }
    std::int64_t copy_cost(std::int64_t bytes) const {
        return compute_cost(copy_ns_per_byte * static_cast<double>(bytes));
    }
    std::int64_t checksum_cost(std::int64_t cells, int vars) const {
        return compute_cost(checksum_ns_per_cell_var * static_cast<double>(cells) * vars);
    }
    /// Wire time of a message (added on top of the sender's egress queue).
    std::int64_t wire_ns(std::int64_t bytes, bool same_node) const {
        const double a = same_node ? intra_node_alpha_ns : alpha_ns;
        const double bw = same_node ? intra_node_bytes_per_ns : bytes_per_ns;
        return static_cast<std::int64_t>(a + static_cast<double>(bytes) / bw);
    }
    /// Binomial-tree collective across P ranks carrying `bytes` per rank.
    std::int64_t collective_ns(int participants, std::int64_t bytes) const {
        int rounds = 0;
        for (int p = 1; p < participants; p *= 2) ++rounds;
        return static_cast<std::int64_t>(
            rounds * (alpha_ns + static_cast<double>(bytes) / bytes_per_ns + mpi_call_ns));
    }
};

/// Measures the real stencil / copy / checksum kernels on this machine and
/// returns a CostModel with the calibrated compute constants (network and
/// overhead constants keep their defaults).
CostModel calibrate(int block_cells = 12, int vars = 8);

}  // namespace dfamr::sim
