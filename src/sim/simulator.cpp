#include "sim/simulator.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace dfamr::sim {

Simulator::Simulator(const ClusterSpec& cluster, const CostModel& costs)
    : cluster_(cluster), costs_(costs) {
    DFAMR_REQUIRE(cluster.nodes >= 1 && cluster.cores_per_node >= 1 && cluster.ranks_per_node >= 1,
                  "invalid cluster spec");
    DFAMR_REQUIRE(cluster.cores_per_node % cluster.ranks_per_node == 0,
                  "ranks per node must divide cores per node");
    const int ranks = cluster.total_ranks();
    cores_.resize(static_cast<std::size_t>(ranks) *
                  static_cast<std::size_t>(cluster.cores_per_rank()));
    nic_free_.resize(static_cast<std::size_t>(cluster.nodes), 0);
    ready_.resize(static_cast<std::size_t>(ranks));
    rank_resume_.resize(static_cast<std::size_t>(ranks), 0);
}

int Simulator::first_core_of(int rank) const { return rank * cluster_.cores_per_rank(); }
int Simulator::node_of(int rank) const { return rank / cluster_.ranks_per_node; }

SimTaskPtr Simulator::new_task(int rank, PhaseKind kind, std::int64_t cost_ns, int pinned_core) {
    DFAMR_REQUIRE(rank >= 0 && rank < cluster_.total_ranks(), "task rank out of range");
    DFAMR_REQUIRE(pinned_core < cluster_.cores_per_rank(), "pinned core out of range");
    auto task = std::make_shared<SimTask>();
    task->node_id = next_node_id_++;
    task->rank = rank;
    task->kind = kind;
    task->cost_ns = std::max<std::int64_t>(cost_ns, 0);
    task->pinned_core = pinned_core;
    return task;
}

void Simulator::add_message(const SimTaskPtr& send, const SimTaskPtr& recv, std::int64_t bytes) {
    DFAMR_REQUIRE(!send->body_done, "sender already executed");
    send->out_messages.emplace_back(recv.get(), bytes);
    ++recv->pending_messages;
    keep_alive(recv.get());  // the arrival event must find it alive
}

int Simulator::new_collective(std::int64_t bytes_per_rank) {
    Collective coll;
    coll.bytes = bytes_per_rank;
    collectives_.push_back(coll);
    ++stats_.collectives;
    return static_cast<int>(collectives_.size()) - 1;
}

void Simulator::set_collective(const SimTaskPtr& task, int collective_id) {
    DFAMR_REQUIRE(collective_id >= 0 && collective_id < static_cast<int>(collectives_.size()),
                  "unknown collective");
    Collective& coll = collectives_[static_cast<std::size_t>(collective_id)];
    DFAMR_REQUIRE(!coll.closed, "cannot add members to a closed collective");
    task->collective_id = collective_id;
    ++coll.expected;
}

void Simulator::close_collective(int collective_id) {
    DFAMR_REQUIRE(collective_id >= 0 && collective_id < static_cast<int>(collectives_.size()),
                  "unknown collective");
    Collective& coll = collectives_[static_cast<std::size_t>(collective_id)];
    DFAMR_REQUIRE(coll.expected > 0, "closing a collective with no members");
    coll.closed = true;
    maybe_complete_collective(collective_id);
}

void Simulator::maybe_complete_collective(int collective_id) {
    Collective& coll = collectives_[static_cast<std::size_t>(collective_id)];
    if (coll.closed && coll.arrived == coll.expected) {
        const std::int64_t done = coll.max_arrival + costs_.collective_ns(coll.expected, coll.bytes);
        events_.push(Event{done, next_seq_++, Event::CollectiveDone, nullptr, collective_id});
    }
}

void Simulator::keep_alive(SimTask* task) {
    // Retention happens at submit(); kept as an explicit marker call so the
    // message API documents the lifetime requirement.
    (void)task;
}

void Simulator::submit(const SimTaskPtr& task) {
    DFAMR_REQUIRE(!task->submitted, "task submitted twice");
    task->submitted = true;
    ++live_tasks_;
    ++stats_.tasks;
    retained_.push_back(task);
    if (retained_.size() > retained_high_water_) {
        std::erase_if(retained_, [](const SimTaskPtr& t) { return t->released; });
        // Grow the threshold when most tasks are genuinely live so a large
        // in-flight window does not trigger quadratic rescans.
        retained_high_water_ = std::max<std::size_t>(1 << 16, retained_.size() * 2);
    }
    if (task->pred_count == 0) {
        make_ready(task.get(), rank_resume_[static_cast<std::size_t>(task->rank)]);
    }
}

void Simulator::make_ready(SimTask* task, std::int64_t at_time) {
    task->ready_ns = std::max(at_time, rank_resume_[static_cast<std::size_t>(task->rank)]);
    ready_[static_cast<std::size_t>(task->rank)].push_back(task);
    dispatch(task->rank, task->ready_ns);
}

void Simulator::dispatch(int rank, std::int64_t now) {
    auto& queue = ready_[static_cast<std::size_t>(rank)];
    const int ncores = cluster_.cores_per_rank();
    const int base = first_core_of(rank);
    bool progress = true;
    while (progress && !queue.empty()) {
        progress = false;
        for (auto it = queue.begin(); it != queue.end(); ++it) {
            SimTask* task = *it;
            int core = -1;
            if (task->pinned_core >= 0) {
                if (!cores_[static_cast<std::size_t>(base + task->pinned_core)].busy) {
                    core = base + task->pinned_core;
                }
            } else {
                for (int c = 0; c < ncores; ++c) {
                    if (!cores_[static_cast<std::size_t>(base + c)].busy) {
                        core = base + c;
                        break;
                    }
                }
            }
            if (core >= 0) {
                queue.erase(it);
                start_task(task, core, std::max(now, task->ready_ns));
                progress = true;
                break;
            }
        }
    }
}

void Simulator::start_task(SimTask* task, int core_global, std::int64_t now) {
    Core& core = cores_[static_cast<std::size_t>(core_global)];
    const std::int64_t start = std::max(now, core.free_at);
    core.busy = true;
    task->start_ns = start;
    running_core_[task->node_id] = core_global;

    if (task->collective_id >= 0) {
        Collective& coll = collectives_[static_cast<std::size_t>(task->collective_id)];
        ++coll.arrived;
        coll.max_arrival = std::max(coll.max_arrival, start + task->cost_ns);
        coll.members.push_back(task);
        maybe_complete_collective(task->collective_id);
        return;  // the core is held until the whole group completes
    }
    events_.push(Event{start + task->cost_ns, next_seq_++, Event::BodyDone, task, -1});
}

void Simulator::finish_body(SimTask* task, std::int64_t now) {
    auto it = running_core_.find(task->node_id);
    DFAMR_ASSERT(it != running_core_.end());
    const int core_global = it->second;
    running_core_.erase(it);
    Core& core = cores_[static_cast<std::size_t>(core_global)];
    core.busy = false;
    core.free_at = now;

    task->body_done = true;
    stats_.busy_ns += now - task->start_ns;
    stats_.busy_ns_by_kind[task->kind] += now - task->start_ns;
    if (tracer_ != nullptr) {
        tracer_->record(task->rank, core_global - first_core_of(task->rank), task->start_ns, now,
                        task->kind);
    }

    // Emit messages.
    for (const auto& [target, bytes] : task->out_messages) {
        const bool same_node = node_of(target->rank) == node_of(task->rank);
        std::int64_t arrival;
        if (same_node) {
            arrival = now + costs_.wire_ns(bytes, true);
        } else {
            auto& nic = nic_free_[static_cast<std::size_t>(node_of(task->rank))];
            nic = std::max(nic, now) + static_cast<std::int64_t>(costs_.nic_gap_ns) +
                  static_cast<std::int64_t>(static_cast<double>(bytes) / costs_.bytes_per_ns);
            arrival = nic + static_cast<std::int64_t>(costs_.alpha_ns);
        }
        ++stats_.messages;
        stats_.bytes += static_cast<std::uint64_t>(bytes);
        events_.push(Event{arrival, next_seq_++, Event::MessageArrival, target, -1});
    }

    if (task->pending_messages == 0) {
        release_task(task, now);
    }
    dispatch(task->rank, now);
}

void Simulator::release_task(SimTask* task, std::int64_t now) {
    DFAMR_ASSERT(!task->released);
    task->released = true;
    task->dep_released = true;
    task->finish_ns = now;
    --live_tasks_;

    bool first = true;
    for (DepNode* succ_node : task->successors) {
        auto* succ = static_cast<SimTask*>(succ_node);
        if (--succ->pred_count == 0 && succ->submitted) {
            if (first) {
                // Immediate-successor approximation: front of the queue.
                succ->ready_ns = std::max(now, rank_resume_[static_cast<std::size_t>(succ->rank)]);
                ready_[static_cast<std::size_t>(succ->rank)].push_front(succ);
                dispatch(succ->rank, succ->ready_ns);
                first = false;
            } else {
                make_ready(succ, now);
            }
        }
    }
    task->successors.clear();
}

void Simulator::run_until_drained() {
    while (!events_.empty()) {
        const Event ev = events_.top();
        events_.pop();
        switch (ev.type) {
            case Event::BodyDone:
                finish_body(ev.task, ev.time);
                break;
            case Event::MessageArrival: {
                SimTask* task = ev.task;
                DFAMR_ASSERT(task->pending_messages > 0);
                --task->pending_messages;
                if (task->pending_messages == 0 && task->body_done && !task->released) {
                    release_task(task, ev.time);
                    dispatch(task->rank, ev.time);
                }
                break;
            }
            case Event::CollectiveDone: {
                Collective& coll = collectives_[static_cast<std::size_t>(ev.collective_id)];
                for (SimTask* member : coll.members) {
                    auto it = running_core_.find(member->node_id);
                    DFAMR_ASSERT(it != running_core_.end());
                    Core& core = cores_[static_cast<std::size_t>(it->second)];
                    core.busy = false;
                    core.free_at = ev.time;
                    stats_.busy_ns += ev.time - member->start_ns;
                    stats_.busy_ns_by_kind[member->kind] += ev.time - member->start_ns;
                    if (tracer_ != nullptr) {
                        tracer_->record(member->rank, it->second - first_core_of(member->rank),
                                        member->start_ns, ev.time, member->kind);
                    }
                    running_core_.erase(it);
                    member->body_done = true;
                    release_task(member, ev.time);
                }
                const std::vector<SimTask*> members = std::move(coll.members);
                coll.members.clear();
                for (SimTask* member : members) dispatch(member->rank, ev.time);
                break;
            }
        }
    }
    if (live_tasks_ != 0) {
        throw Error("simulator drained its events with " + std::to_string(live_tasks_) +
                    " tasks stuck (dependency cycle or missing message)");
    }
}

std::int64_t Simulator::rank_time(int rank) const {
    std::int64_t t = rank_resume_[static_cast<std::size_t>(rank)];
    const int base = first_core_of(rank);
    for (int c = 0; c < cluster_.cores_per_rank(); ++c) {
        t = std::max(t, cores_[static_cast<std::size_t>(base + c)].free_at);
    }
    return t;
}

std::int64_t Simulator::global_time() const {
    std::int64_t t = 0;
    for (int r = 0; r < cluster_.total_ranks(); ++r) t = std::max(t, rank_time(r));
    return t;
}

void Simulator::advance_all_ranks_to(std::int64_t t) {
    for (Core& core : cores_) core.free_at = std::max(core.free_at, t);
    for (std::int64_t& r : rank_resume_) r = std::max(r, t);
}

}  // namespace dfamr::sim
