#include "sim/cost_model.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "amr/block.hpp"
#include "common/timing.hpp"

namespace dfamr::sim {

CostModel calibrate(int block_cells, int vars) {
    CostModel model;

    amr::BlockShape shape{block_cells, block_cells, block_cells, vars};
    amr::Block block(amr::BlockKey{}, shape);
    block.init_cells(dfamr::Box{{0, 0, 0}, {1, 1, 1}}, 7);

    const std::int64_t cells =
        static_cast<std::int64_t>(block_cells) * block_cells * block_cells;

    // Stencil: repeat until we have a stable per-cell-var figure.
    {
        const int reps = 20;
        const std::int64_t t0 = now_ns();
        for (int r = 0; r < reps; ++r) block.stencil7(0, vars);
        const std::int64_t dt = now_ns() - t0;
        model.stencil_ns_per_cell_var =
            std::max(0.2, static_cast<double>(dt) / (static_cast<double>(reps) * cells * vars));
    }

    // Copy throughput via memcpy of a face-sized buffer.
    {
        const std::size_t bytes = 1 << 20;
        std::vector<char> src(bytes, 1), dst(bytes);
        const int reps = 50;
        const std::int64_t t0 = now_ns();
        for (int r = 0; r < reps; ++r) {
            std::memcpy(dst.data(), src.data(), bytes);
            src[0] = static_cast<char>(r);  // defeat dead-code elimination
        }
        const std::int64_t dt = now_ns() - t0;
        model.copy_ns_per_byte =
            std::max(0.005, static_cast<double>(dt) / (static_cast<double>(reps) * bytes));
    }

    // Checksum.
    {
        const int reps = 20;
        double sink = 0;
        const std::int64_t t0 = now_ns();
        for (int r = 0; r < reps; ++r) sink += block.checksum(0, vars);
        const std::int64_t dt = now_ns() - t0;
        model.checksum_ns_per_cell_var =
            std::max(0.1, static_cast<double>(dt) / (static_cast<double>(reps) * cells * vars));
        (void)sink;
    }
    return model;
}

}  // namespace dfamr::sim
