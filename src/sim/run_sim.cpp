#include "sim/run_sim.hpp"

#include <algorithm>
#include <map>

#include "amr/comm_plan.hpp"
#include "amr/structure.hpp"
#include "common/error.hpp"

namespace dfamr::sim {

using amr::BlockKey;
using amr::CommPlan;
using amr::FaceRel;
using tasking::Dep;
using tasking::DepKind;
using tasking::Region;

// ---------------------------------------------------------------------------
// Experiment-layout helpers
// ---------------------------------------------------------------------------

namespace {
std::vector<int> prime_factors_desc(int n) {
    std::vector<int> primes;
    int m = n;
    for (int p = 2; p * p <= m; ++p) {
        while (m % p == 0) {
            primes.push_back(p);
            m /= p;
        }
    }
    if (m > 1) primes.push_back(m);
    std::sort(primes.rbegin(), primes.rend());
    return primes;
}
}  // namespace

Vec3i factor3(int n) {
    DFAMR_REQUIRE(n >= 1, "cannot factor a non-positive count");
    Vec3i dims{1, 1, 1};
    for (int p : prime_factors_desc(n)) {
        int smallest = 0;
        for (int d = 1; d < 3; ++d) {
            if (dims[d] < dims[smallest]) smallest = d;
        }
        dims[smallest] *= p;
    }
    if (dims.x < dims.z) std::swap(dims.x, dims.z);
    return dims;
}

Vec3i rank_grid_dividing(Vec3i blocks, int nranks) {
    Vec3i ranks{1, 1, 1};
    for (int p : prime_factors_desc(nranks)) {
        int best = -1;
        int best_quotient = 0;
        for (int d = 0; d < 3; ++d) {
            const int q = blocks[d] / ranks[d];
            if (blocks[d] % (ranks[d] * p) == 0 && q % p == 0 && q > best_quotient) {
                best_quotient = q;
                best = d;
            }
        }
        DFAMR_REQUIRE(best >= 0, "rank count " + std::to_string(nranks) +
                                     " cannot divide the block grid");
        ranks[best] *= p;
    }
    return ranks;
}

void arrange(amr::Config& cfg, Vec3i block_grid, int total_ranks) {
    const Vec3i ranks = rank_grid_dividing(block_grid, total_ranks);
    cfg.npx = ranks.x;
    cfg.npy = ranks.y;
    cfg.npz = ranks.z;
    cfg.init_x = block_grid.x / ranks.x;
    cfg.init_y = block_grid.y / ranks.y;
    cfg.init_z = block_grid.z / ranks.z;
}

// ---------------------------------------------------------------------------
// SimRun: mirrors core::DriverBase's orchestration, building DAGs instead of
// executing kernels.
// ---------------------------------------------------------------------------

namespace {

class SimRun {
public:
    SimRun(const amr::Config& app, amr::Variant variant, const ClusterSpec& cluster,
           const CostModel& costs, amr::Tracer* tracer)
        : cfg_(app),
          variant_(variant),
          cluster_(cluster),
          costs_(costs),
          sim_(cluster, costs),
          structure_(app),
          shape_{app.nx, app.ny, app.nz, app.num_vars} {
        cfg_.validate();
        DFAMR_REQUIRE(cfg_.num_ranks() == cluster.total_ranks(),
                      "config rank grid must match the cluster's total ranks");
        R_ = cluster.total_ranks();
        W_ = cluster.cores_per_rank();
        mem_factor_ = cluster.rank_spans_sockets() ? costs.numa_penalty : 1.0;
        sim_.set_tracer(tracer);
        state_.resize(static_cast<std::size_t>(R_));
        regs_.resize(static_cast<std::size_t>(R_));
        rebuild_rank_state();
    }

    SimResult execute() {
        if (cfg_.refine_freq > 0 && cfg_.num_refine > 0) refinement_phase(0);
        int stage_counter = 0;
        for (int ts = 1; ts <= cfg_.num_tsteps; ++ts) {
            for (int stage = 0; stage < cfg_.stages_per_ts; ++stage) {
                for (int group = 0; group < cfg_.num_groups(); ++group) {
                    communicate_stage(group);
                    stencil_stage(group);
                }
                ++stage_counter;
                if (cfg_.checksum_freq > 0 && stage_counter % cfg_.checksum_freq == 0) {
                    checksum_stage();
                }
            }
            if (cfg_.refine_freq > 0 && cfg_.num_refine > 0 && ts % cfg_.refine_freq == 0) {
                refinement_phase(cfg_.refine_freq);
            }
        }
        finish_pending_checksums();
        sim_.run_until_drained();

        SimResult result;
        result.total_s = static_cast<double>(sim_.global_time()) * 1e-9;
        result.refine_s = static_cast<double>(refine_ns_) * 1e-9;
        result.total_flops = flops_;
        result.final_blocks = static_cast<std::int64_t>(structure_.num_blocks());
        result.stats = sim_.stats();
        return result;
    }

private:
    struct Move {
        BlockKey key;
        int from = -1, to = -1;
        int id = 0;
    };

    struct RankState {
        std::vector<BlockKey> blocks;
        CommPlan plan;
        SimTaskPtr tail;  // program-order / main-thread chain
        // Virtual dependency regions (TAMPI variant only).
        std::uint64_t arena = 0;
        std::map<BlockKey, std::uint64_t> block_region;  // base; +group = region
        std::array<std::vector<std::uint64_t>, 3> send_base, recv_base;  // per neighbor
        std::uint64_t cks_partials[2] = {0, 0};
        std::uint64_t cks_sums[2] = {0, 0};
    };

    // --- small helpers -----------------------------------------------------
    int group_begin(int g) const { return g * cfg_.vars_per_group(); }
    int group_end(int g) const { return std::min(cfg_.num_vars, (g + 1) * cfg_.vars_per_group()); }
    int gvars(int g) const { return group_end(g) - group_begin(g); }
    bool tasking() const { return variant_ == amr::Variant::TampiOss; }
    /// Variant used for the refinement data operations (the
    /// --serial_refinement ablation keeps them sequential).
    amr::Variant refine_variant() const {
        if (tasking() && !cfg_.taskify_refinement) return amr::Variant::MpiOnly;
        return variant_;
    }
    bool refine_tasking() const { return tasking() && cfg_.taskify_refinement; }

    std::int64_t overhead() const {
        // Work-stealing runtime constant (see CostModel::tasking_overhead_ns);
        // the legacy task_overhead_ns models the retired global-mutex
        // scheduler and remains for the micro_substrates comparisons.
        return tasking() ? static_cast<std::int64_t>(costs_.tasking_overhead_ns) : 0;
    }
    std::int64_t stencil_ns(std::int64_t blocks, int vars) const {
        double ns = costs_.stencil_ns_per_cell_var * static_cast<double>(blocks) *
                    static_cast<double>(cfg_.cells_interior()) * vars * mem_factor_;
        if (cfg_.stencil == 27) ns *= 27.0 / 7.0;  // flop-proportional
        if (tasking()) ns /= costs_.locality_speedup;
        return static_cast<std::int64_t>(ns);
    }
    std::int64_t copy_ns(std::int64_t bytes) const {
        return static_cast<std::int64_t>(costs_.copy_ns_per_byte * static_cast<double>(bytes) *
                                         mem_factor_);
    }
    std::int64_t checksum_ns(std::int64_t blocks, int vars) const {
        return static_cast<std::int64_t>(costs_.checksum_ns_per_cell_var *
                                         static_cast<double>(blocks) *
                                         static_cast<double>(cfg_.cells_interior()) * vars *
                                         mem_factor_);
    }
    std::int64_t mpi_call() const { return static_cast<std::int64_t>(costs_.mpi_call_ns); }
    std::int64_t block_bytes() const { return shape_.total_cells() * 8; }
    std::int64_t face_bytes(int axis, FaceRel rel, int vars) const {
        return (rel == FaceRel::Same ? shape_.face_values_same(axis, vars)
                                     : shape_.face_values_mixed(axis, vars)) *
               8;
    }

    std::uint64_t alloc_region(RankState& st, std::uint64_t bytes) {
        const std::uint64_t base = st.arena;
        st.arena += bytes;
        return base;
    }
    static Dep dep(DepKind kind, std::uint64_t base, std::uint64_t size) {
        return Dep{kind, Region::synthetic(base, static_cast<std::size_t>(size))};
    }
    Dep block_dep(int rank, DepKind kind, const BlockKey& key, int group) {
        RankState& st = state_[static_cast<std::size_t>(rank)];
        auto it = st.block_region.find(key);
        DFAMR_REQUIRE(it != st.block_region.end(), "block region missing for dependency");
        return dep(kind, it->second + static_cast<std::uint64_t>(group), 1);
    }

    void chain(int rank, const SimTaskPtr& t) {
        SimTaskPtr& tail = state_[static_cast<std::size_t>(rank)].tail;
        edge(tail, t);
        tail = t;
    }
    static void edge(const SimTaskPtr& pred, const SimTaskPtr& succ) {
        if (pred && !pred->released) {
            pred->successors.push_back(succ.get());
            ++succ->pred_count;
        }
    }
    /// Serial (program-order) task on the rank's main core.
    SimTaskPtr serial(int rank, PhaseKind kind, std::int64_t cost) {
        auto t = sim_.new_task(rank, kind, cost, W_ > 1 ? 0 : -1);
        chain(rank, t);
        sim_.submit(t);
        return t;
    }
    /// Data-flow task with region dependencies (TAMPI variant).
    SimTaskPtr dataflow(int rank, PhaseKind kind, std::int64_t cost,
                        std::initializer_list<Dep> deps) {
        auto t = sim_.new_task(rank, kind, cost);
        regs_[static_cast<std::size_t>(rank)].register_accesses(
            t, std::span<const Dep>(deps.begin(), deps.size()));
        sim_.submit(t);
        return t;
    }
    SimTaskPtr dataflow_v(int rank, PhaseKind kind, std::int64_t cost,
                          const std::vector<Dep>& deps) {
        auto t = sim_.new_task(rank, kind, cost);
        regs_[static_cast<std::size_t>(rank)].register_accesses(t, std::span<const Dep>(deps));
        sim_.submit(t);
        return t;
    }
    /// Fork-join parallel region: static chunks pinned to cores + barrier.
    void parallel_region(int rank, PhaseKind kind, const std::vector<std::int64_t>& item_costs) {
        RankState& st = state_[static_cast<std::size_t>(rank)];
        const SimTaskPtr start_tail = st.tail;
        std::vector<SimTaskPtr> chunks;
        const std::size_t n = item_costs.size();
        for (int w = 0; w < W_; ++w) {
            const std::size_t lo = n * static_cast<std::size_t>(w) / static_cast<std::size_t>(W_);
            const std::size_t hi =
                n * static_cast<std::size_t>(w + 1) / static_cast<std::size_t>(W_);
            if (hi <= lo) continue;
            std::int64_t cost = 0;
            for (std::size_t i = lo; i < hi; ++i) cost += item_costs[i];
            auto t = sim_.new_task(rank, kind, cost, w);
            edge(start_tail, t);
            sim_.submit(t);
            chunks.push_back(std::move(t));
        }
        auto join = sim_.new_task(rank, PhaseKind::Control, 0, 0);
        for (const SimTaskPtr& c : chunks) edge(c, join);
        if (chunks.empty()) edge(start_tail, join);
        st.tail = join;
        sim_.submit(join);
    }

    /// Drains all outstanding work, then applies a blocking collective
    /// across every rank (used at the global sync points).
    void analytic_collective(std::int64_t bytes) {
        sim_.run_until_drained();
        std::int64_t tmax = 0;
        for (int r = 0; r < R_; ++r) tmax = std::max(tmax, sim_.rank_time(r));
        sim_.advance_all_ranks_to(tmax + costs_.collective_ns(R_, bytes));
        // Everything is released; prune dependency bookkeeping.
        for (auto& reg : regs_) reg.garbage_collect();
    }

    /// Index of rank `from` in `plans_[of_rank]`'s direction-d neighbor list.
    int neighbor_index(int of_rank, int dir, int from) const {
        const auto& neighbors = state_[static_cast<std::size_t>(of_rank)].plan.direction(dir).neighbors;
        for (std::size_t i = 0; i < neighbors.size(); ++i) {
            if (neighbors[i].peer == from) return static_cast<int>(i);
        }
        throw Error("asymmetric communication plan: peer not found");
    }

    // --- state rebuild -------------------------------------------------------
    void refresh_block_lists() {
        for (RankState& st : state_) st.blocks.clear();
        for (const auto& [key, owner] : structure_.leaves()) {
            state_[static_cast<std::size_t>(owner)].blocks.push_back(key);
        }
    }

    void rebuild_rank_state() {
        refresh_block_lists();
        amr::CommPlanOptions opts;
        opts.send_faces = cfg_.send_faces;
        opts.max_comm_tasks = cfg_.max_comm_tasks;
        for (int r = 0; r < R_; ++r) {
            RankState& st = state_[static_cast<std::size_t>(r)];
            st.plan = CommPlan(structure_, shape_, r, opts,
                               std::span<const BlockKey>(st.blocks));
            st.tail = nullptr;
        }
        if (!tasking()) return;

        // Fresh registries (the sharded registry is move-only, so no assign).
        regs_ = std::vector<tasking::DependencyRegistry>(static_cast<std::size_t>(R_));
        const std::uint64_t gvm = static_cast<std::uint64_t>(cfg_.vars_per_group());
        for (int r = 0; r < R_; ++r) {
            RankState& st = state_[static_cast<std::size_t>(r)];
            st.arena = (static_cast<std::uint64_t>(r) + 1) << 44;
            st.block_region.clear();
            for (const BlockKey& key : st.blocks) {
                st.block_region[key] =
                    alloc_region(st, static_cast<std::uint64_t>(cfg_.num_groups()));
            }
            // Communication buffer regions, reproducing the reference
            // aliasing: without --separate_buffers the three directions
            // share one buffer pair (false inter-direction dependencies).
            std::uint64_t send_total_max = 0, recv_total_max = 0;
            std::array<std::vector<std::uint64_t>, 3> send_off, recv_off;
            for (int d = 0; d < 3; ++d) {
                std::uint64_t s = 0, v = 0;
                for (const amr::NeighborExchange& ex : st.plan.direction(d).neighbors) {
                    send_off[static_cast<std::size_t>(d)].push_back(s);
                    recv_off[static_cast<std::size_t>(d)].push_back(v);
                    s += static_cast<std::uint64_t>(ex.send_values) * gvm * 8;
                    v += static_cast<std::uint64_t>(ex.recv_values) * gvm * 8;
                }
                send_total_max = std::max(send_total_max, s);
                recv_total_max = std::max(recv_total_max, v);
                if (cfg_.separate_buffers) {
                    const std::uint64_t sbase = alloc_region(st, s);
                    const std::uint64_t rbase = alloc_region(st, v);
                    auto& sb = st.send_base[static_cast<std::size_t>(d)];
                    auto& rb = st.recv_base[static_cast<std::size_t>(d)];
                    sb.clear();
                    rb.clear();
                    for (std::uint64_t off : send_off[static_cast<std::size_t>(d)]) {
                        sb.push_back(sbase + off);
                    }
                    for (std::uint64_t off : recv_off[static_cast<std::size_t>(d)]) {
                        rb.push_back(rbase + off);
                    }
                }
            }
            if (!cfg_.separate_buffers) {
                const std::uint64_t sbase = alloc_region(st, send_total_max);
                const std::uint64_t rbase = alloc_region(st, recv_total_max);
                for (int d = 0; d < 3; ++d) {
                    auto& sb = st.send_base[static_cast<std::size_t>(d)];
                    auto& rb = st.recv_base[static_cast<std::size_t>(d)];
                    sb.clear();
                    rb.clear();
                    for (std::uint64_t off : send_off[static_cast<std::size_t>(d)]) {
                        sb.push_back(sbase + off);
                    }
                    for (std::uint64_t off : recv_off[static_cast<std::size_t>(d)]) {
                        rb.push_back(rbase + off);
                    }
                }
            }
            // Checksum slots (double-buffered for the delayed optimization).
            const std::uint64_t groups = static_cast<std::uint64_t>(cfg_.num_groups());
            const std::uint64_t nblocks = st.blocks.size();
            for (int slot = 0; slot < 2; ++slot) {
                st.cks_partials[slot] = alloc_region(st, groups * std::max<std::uint64_t>(nblocks, 1) * 8);
                st.cks_sums[slot] = alloc_region(st, groups * 8);
            }
        }
        cks_pending_[0] = cks_pending_[1] = false;
        cks_slot_ = 0;
    }

    // --- stages ---------------------------------------------------------------
    void communicate_stage(int group) {
        if (tasking()) {
            tampi_communicate(group);
            return;
        }
        const int gv = gvars(group);
        for (int dir = 0; dir < 3; ++dir) {
            // Pass 1: receive posts + completion sinks, every rank.
            std::vector<std::vector<std::vector<SimTaskPtr>>> sinks(
                static_cast<std::size_t>(R_));
            for (int r = 0; r < R_; ++r) {
                const auto& dp = state_[static_cast<std::size_t>(r)].plan.direction(dir);
                sinks[static_cast<std::size_t>(r)].resize(dp.neighbors.size());
                for (std::size_t ni = 0; ni < dp.neighbors.size(); ++ni) {
                    for (std::size_t ci = 0; ci < dp.neighbors[ni].recv_chunks.size(); ++ci) {
                        serial(r, PhaseKind::Recv, mpi_call());  // the Irecv post
                        auto sink = sim_.new_task(r, PhaseKind::Recv, 0);
                        sim_.submit(sink);
                        sinks[static_cast<std::size_t>(r)][ni].push_back(std::move(sink));
                    }
                }
            }
            // Pass 2: pack/send, intra copies, waitany-unpack, per rank.
            for (int r = 0; r < R_; ++r) {
                RankState& st = state_[static_cast<std::size_t>(r)];
                const auto& dp = st.plan.direction(dir);

                if (variant_ == amr::Variant::MpiOnly) {
                    // Pack + send interleaved per chunk (Algorithm 2).
                    for (const amr::NeighborExchange& ex : dp.neighbors) {
                        for (const amr::MessageChunk& chunk : ex.send_chunks) {
                            const std::int64_t bytes = chunk.value_count * gv * 8;
                            serial(r, PhaseKind::Pack, copy_ns(bytes));
                            auto send = serial(r, PhaseKind::Send, mpi_call());
                            link_send(send, r, dir, ex.peer, chunk, sinks, bytes);
                        }
                    }
                    serial(r, PhaseKind::IntraCopy, intra_copy_cost(dp, gv));
                    // Waitany loop: unpacks gated by program order + arrival.
                    const SimTaskPtr after_copies = st.tail;
                    std::vector<SimTaskPtr> unpacks;
                    for (std::size_t ni = 0; ni < dp.neighbors.size(); ++ni) {
                        const amr::NeighborExchange& ex = dp.neighbors[ni];
                        for (std::size_t ci = 0; ci < ex.recv_chunks.size(); ++ci) {
                            const std::int64_t bytes = ex.recv_chunks[ci].value_count * gv * 8;
                            auto u = sim_.new_task(r, PhaseKind::Unpack, copy_ns(bytes));
                            edge(after_copies, u);
                            edge(sinks[static_cast<std::size_t>(r)][ni][ci], u);
                            sim_.submit(u);
                            unpacks.push_back(std::move(u));
                        }
                    }
                    auto join = sim_.new_task(r, PhaseKind::Control, 0);
                    for (const SimTaskPtr& u : unpacks) edge(u, join);
                    if (unpacks.empty()) edge(st.tail, join);
                    st.tail = join;
                    sim_.submit(join);
                } else {  // ForkJoin
                    // Workshared pack over all faces, then master sends.
                    std::vector<std::int64_t> pack_items;
                    for (const amr::NeighborExchange& ex : dp.neighbors) {
                        for (const amr::FaceTransfer& f : ex.sends) {
                            pack_items.push_back(copy_ns(face_bytes(dir, f.geom.rel, gv)));
                        }
                    }
                    parallel_region(r, PhaseKind::Pack, pack_items);
                    for (const amr::NeighborExchange& ex : dp.neighbors) {
                        for (const amr::MessageChunk& chunk : ex.send_chunks) {
                            const std::int64_t bytes = chunk.value_count * gv * 8;
                            auto send = serial(r, PhaseKind::Send, mpi_call());
                            link_send(send, r, dir, ex.peer, chunk, sinks, bytes);
                        }
                    }
                    // Workshared intra copies + boundary.
                    std::vector<std::int64_t> copy_items;
                    for (const amr::IntraCopy& c : dp.copies) {
                        copy_items.push_back(copy_ns(face_bytes(dir, c.geom.rel, gv)));
                    }
                    for (std::size_t b = 0; b < dp.boundary.size(); ++b) {
                        copy_items.push_back(copy_ns(face_bytes(dir, FaceRel::Same, gv)));
                    }
                    parallel_region(r, PhaseKind::IntraCopy, copy_items);
                    // Master waits for ALL receives, then workshared unpack.
                    auto wait = sim_.new_task(r, PhaseKind::CommWait, 0, 0);
                    edge(st.tail, wait);
                    for (auto& per_neighbor : sinks[static_cast<std::size_t>(r)]) {
                        for (const SimTaskPtr& s : per_neighbor) edge(s, wait);
                    }
                    st.tail = wait;
                    sim_.submit(wait);
                    std::vector<std::int64_t> unpack_items;
                    for (const amr::NeighborExchange& ex : dp.neighbors) {
                        for (const amr::FaceTransfer& f : ex.recvs) {
                            unpack_items.push_back(copy_ns(face_bytes(dir, f.geom.rel, gv)));
                        }
                    }
                    parallel_region(r, PhaseKind::Unpack, unpack_items);
                }
            }
        }
    }

    std::int64_t intra_copy_cost(const amr::DirectionPlan& dp, int gv) const {
        std::int64_t ns = 0;
        for (const amr::IntraCopy& c : dp.copies) {
            ns += copy_ns(face_bytes(c.geom.axis, c.geom.rel, gv));
        }
        for (std::size_t b = 0; b < dp.boundary.size(); ++b) {
            ns += copy_ns(face_bytes(0, FaceRel::Same, gv));
        }
        return ns;
    }

    void link_send(const SimTaskPtr& send, int from, int dir, int peer,
                   const amr::MessageChunk& chunk,
                   std::vector<std::vector<std::vector<SimTaskPtr>>>& sinks,
                   std::int64_t bytes) {
        const int pni = neighbor_index(peer, dir, from);
        // The peer's recv chunk index equals this chunk's index in the
        // symmetric plan: find it by matching tags (identical layout).
        const auto& peer_ex =
            state_[static_cast<std::size_t>(peer)].plan.direction(dir).neighbors[static_cast<std::size_t>(pni)];
        int ci = -1;
        for (std::size_t i = 0; i < peer_ex.recv_chunks.size(); ++i) {
            if (peer_ex.recv_chunks[i].tag == chunk.tag) {
                ci = static_cast<int>(i);
                break;
            }
        }
        DFAMR_REQUIRE(ci >= 0, "no matching receive chunk on the peer");
        sim_.add_message(send, sinks[static_cast<std::size_t>(peer)][static_cast<std::size_t>(pni)]
                                   [static_cast<std::size_t>(ci)],
                         bytes);
    }

    void tampi_communicate(int group) {
        const int gv = gvars(group);
        const std::uint64_t gvm = static_cast<std::uint64_t>(cfg_.vars_per_group());
        for (int dir = 0; dir < 3; ++dir) {
            // Pass 1: receive tasks everywhere (out-dep on buffer section).
            std::vector<std::vector<std::vector<SimTaskPtr>>> recv_tasks(
                static_cast<std::size_t>(R_));
            for (int r = 0; r < R_; ++r) {
                RankState& st = state_[static_cast<std::size_t>(r)];
                const auto& dp = st.plan.direction(dir);
                recv_tasks[static_cast<std::size_t>(r)].resize(dp.neighbors.size());
                for (std::size_t ni = 0; ni < dp.neighbors.size(); ++ni) {
                    const std::uint64_t rbase = st.recv_base[static_cast<std::size_t>(dir)][ni];
                    for (const amr::MessageChunk& chunk : dp.neighbors[ni].recv_chunks) {
                        auto t = dataflow(
                            r, PhaseKind::Recv, mpi_call() + overhead(),
                            {dep(DepKind::Out,
                                 rbase + static_cast<std::uint64_t>(chunk.value_offset) * gvm * 8,
                                 static_cast<std::uint64_t>(chunk.value_count) * gvm * 8)});
                        recv_tasks[static_cast<std::size_t>(r)][ni].push_back(std::move(t));
                    }
                }
            }
            // Pass 2: pack/send/unpack/copies per rank.
            for (int r = 0; r < R_; ++r) {
                RankState& st = state_[static_cast<std::size_t>(r)];
                const auto& dp = st.plan.direction(dir);
                for (std::size_t ni = 0; ni < dp.neighbors.size(); ++ni) {
                    const amr::NeighborExchange& ex = dp.neighbors[ni];
                    const std::uint64_t sbase = st.send_base[static_cast<std::size_t>(dir)][ni];
                    const std::uint64_t rbase = st.recv_base[static_cast<std::size_t>(dir)][ni];
                    for (const amr::MessageChunk& chunk : ex.send_chunks) {
                        for (int f = chunk.first_face; f < chunk.first_face + chunk.face_count;
                             ++f) {
                            const amr::FaceTransfer& face = ex.sends[static_cast<std::size_t>(f)];
                            const std::int64_t fb = face.value_count * gv * 8;
                            dataflow(r, PhaseKind::Pack, copy_ns(fb) + overhead(),
                                     {block_dep(r, DepKind::In, face.mine, group),
                                      dep(DepKind::Out,
                                          sbase + static_cast<std::uint64_t>(face.value_offset) *
                                                      gvm * 8,
                                          static_cast<std::uint64_t>(face.value_count) * gvm * 8)});
                        }
                        auto send = dataflow(
                            r, PhaseKind::Send, mpi_call() + overhead(),
                            {dep(DepKind::In,
                                 sbase + static_cast<std::uint64_t>(chunk.value_offset) * gvm * 8,
                                 static_cast<std::uint64_t>(chunk.value_count) * gvm * 8)});
                        const std::int64_t bytes = chunk.value_count * gv * 8;
                        // Find the peer's matching recv task by tag.
                        const int pni = neighbor_index(ex.peer, dir, r);
                        const auto& peer_ex = state_[static_cast<std::size_t>(ex.peer)]
                                                  .plan.direction(dir)
                                                  .neighbors[static_cast<std::size_t>(pni)];
                        int ci = -1;
                        for (std::size_t i = 0; i < peer_ex.recv_chunks.size(); ++i) {
                            if (peer_ex.recv_chunks[i].tag == chunk.tag) {
                                ci = static_cast<int>(i);
                                break;
                            }
                        }
                        DFAMR_REQUIRE(ci >= 0, "no matching receive chunk on the peer");
                        sim_.add_message(send,
                                         recv_tasks[static_cast<std::size_t>(ex.peer)]
                                                   [static_cast<std::size_t>(pni)]
                                                   [static_cast<std::size_t>(ci)],
                                         bytes);
                    }
                    for (const amr::MessageChunk& chunk : ex.recv_chunks) {
                        for (int f = chunk.first_face; f < chunk.first_face + chunk.face_count;
                             ++f) {
                            const amr::FaceTransfer& face = ex.recvs[static_cast<std::size_t>(f)];
                            const std::int64_t fb = face.value_count * gv * 8;
                            dataflow(r, PhaseKind::Unpack, copy_ns(fb) + overhead(),
                                     {dep(DepKind::In,
                                          rbase + static_cast<std::uint64_t>(face.value_offset) *
                                                      gvm * 8,
                                          static_cast<std::uint64_t>(face.value_count) * gvm * 8),
                                      block_dep(r, DepKind::InOut, face.mine, group)});
                        }
                    }
                }
                for (const amr::IntraCopy& c : dp.copies) {
                    const std::int64_t fb = face_bytes(c.geom.axis, c.geom.rel, gv);
                    dataflow(r, PhaseKind::IntraCopy, copy_ns(fb) + overhead(),
                             {block_dep(r, DepKind::In, c.src, group),
                              block_dep(r, DepKind::InOut, c.dst, group)});
                }
                for (const auto& [key, sense] : dp.boundary) {
                    (void)sense;
                    const std::int64_t fb = face_bytes(dir, FaceRel::Same, gv);
                    dataflow(r, PhaseKind::IntraCopy, copy_ns(fb) + overhead(),
                             {block_dep(r, DepKind::InOut, key, group)});
                }
            }
        }
    }

    void stencil_stage(int group) {
        const int gv = gvars(group);
        flops_ += static_cast<std::int64_t>(structure_.num_blocks()) * cfg_.stencil *
                  cfg_.cells_interior() * gv;
        for (int r = 0; r < R_; ++r) {
            RankState& st = state_[static_cast<std::size_t>(r)];
            const auto nblocks = static_cast<std::int64_t>(st.blocks.size());
            switch (variant_) {
                case amr::Variant::MpiOnly:
                    serial(r, PhaseKind::Stencil, stencil_ns(nblocks, gv));
                    break;
                case amr::Variant::ForkJoin: {
                    std::vector<std::int64_t> items(static_cast<std::size_t>(nblocks),
                                                    stencil_ns(1, gv));
                    parallel_region(r, PhaseKind::Stencil, items);
                    break;
                }
                case amr::Variant::TampiOss:
                    for (const BlockKey& key : st.blocks) {
                        dataflow(r, PhaseKind::Stencil, stencil_ns(1, gv) + overhead(),
                                 {block_dep(r, DepKind::InOut, key, group)});
                    }
                    break;
            }
        }
    }

    void checksum_stage() {
        const int groups = cfg_.num_groups();
        if (!tasking()) {
            for (int r = 0; r < R_; ++r) {
                const auto nblocks =
                    static_cast<std::int64_t>(state_[static_cast<std::size_t>(r)].blocks.size());
                if (variant_ == amr::Variant::MpiOnly) {
                    serial(r, PhaseKind::ChecksumLocal, checksum_ns(nblocks, cfg_.num_vars));
                } else {
                    std::vector<std::int64_t> items(static_cast<std::size_t>(nblocks),
                                                    checksum_ns(1, cfg_.num_vars));
                    parallel_region(r, PhaseKind::ChecksumLocal, items);
                }
            }
            analytic_collective(groups * 8);
            return;
        }

        // TAMPI+OSS: local tasks per (block, group) + a reduce task per group.
        const int slot = cks_slot_;
        for (int r = 0; r < R_; ++r) {
            RankState& st = state_[static_cast<std::size_t>(r)];
            const std::uint64_t n = std::max<std::uint64_t>(st.blocks.size(), 1);
            for (int g = 0; g < groups; ++g) {
                const std::uint64_t row = st.cks_partials[slot] +
                                          static_cast<std::uint64_t>(g) * n * 8;
                for (std::size_t i = 0; i < st.blocks.size(); ++i) {
                    dataflow(r, PhaseKind::ChecksumLocal, checksum_ns(1, gvars(g)) + overhead(),
                             {block_dep(r, DepKind::In, st.blocks[i], g),
                              dep(DepKind::Out, row + static_cast<std::uint64_t>(i) * 8, 8)});
                }
                dataflow(r, PhaseKind::ChecksumReduce,
                         static_cast<std::int64_t>(st.blocks.size()) * 20 + overhead(),
                         {dep(DepKind::In, row, n * 8),
                          dep(DepKind::Out, st.cks_sums[slot] + static_cast<std::uint64_t>(g) * 8,
                              8)});
            }
        }

        if (cfg_.delayed_checksum) {
            // §IV-C: validate the PREVIOUS checksum stage under a
            // taskwait-with-dependencies; the collective runs on the main
            // core while the pipeline keeps flowing.
            const int prev = 1 - slot;
            if (cks_pending_[prev]) {
                const int coll = sim_.new_collective(groups * 8);
                for (int r = 0; r < R_; ++r) {
                    RankState& st = state_[static_cast<std::size_t>(r)];
                    auto member = sim_.new_task(r, PhaseKind::ChecksumReduce, mpi_call(), 0);
                    regs_[static_cast<std::size_t>(r)].register_accesses(
                        member, std::array<Dep, 1>{dep(DepKind::In, st.cks_sums[prev],
                                                       static_cast<std::uint64_t>(groups) * 8)});
                    chain(r, member);
                    sim_.set_collective(member, coll);
                    sim_.submit(member);
                }
                sim_.close_collective(coll);
                cks_pending_[prev] = false;
            }
            cks_pending_[slot] = true;
        } else {
            analytic_collective(groups * 8);
        }
        cks_slot_ = 1 - cks_slot_;
    }

    void finish_pending_checksums() {
        if (!tasking()) return;
        for (int slot = 0; slot < 2; ++slot) {
            if (cks_pending_[slot]) {
                analytic_collective(cfg_.num_groups() * 8);
                cks_pending_[slot] = false;
            }
        }
    }

    // --- refinement -------------------------------------------------------
    void refinement_phase(int steps) {
        finish_pending_checksums();
        sim_.run_until_drained();
        const std::int64_t t0 = sim_.global_time();

        for (int s = 0; s < steps; ++s) {
            for (amr::ObjectSpec& obj : cfg_.objects) obj.step();
        }

        const int rounds = cfg_.max_block_change();
        for (int round_idx = 0; round_idx < rounds; ++round_idx) {
            const amr::RefineRound round =
                structure_.plan_refine_round(cfg_.objects, cfg_.uniform_refine);
            if (round.empty()) break;

            // Refinement control (marking, bookkeeping): sequential per
            // rank — this is the hard-to-parallelize part (§IV-B), and the
            // reason hybrids (more blocks/rank) lose ground here.
            for (int r = 0; r < R_; ++r) {
                const auto nblocks =
                    static_cast<std::int64_t>(state_[static_cast<std::size_t>(r)].blocks.size());
                serial(r, PhaseKind::Control,
                       static_cast<std::int64_t>(costs_.control_ns_per_block *
                                                 static_cast<double>(nblocks)));
            }

            // Splits.
            std::vector<std::vector<const BlockKey*>> owned_splits(
                static_cast<std::size_t>(R_));
            for (const BlockKey& key : round.refine) {
                owned_splits[static_cast<std::size_t>(structure_.owner(key))].push_back(&key);
            }
            for (int r = 0; r < R_; ++r) {
                const auto& splits = owned_splits[static_cast<std::size_t>(r)];
                if (splits.empty()) continue;
                const std::int64_t per_child = copy_ns(block_bytes());
                switch (refine_variant()) {
                    case amr::Variant::MpiOnly:
                        serial(r, PhaseKind::RefineSplit,
                               static_cast<std::int64_t>(splits.size()) * 8 * per_child);
                        break;
                    case amr::Variant::ForkJoin: {
                        std::vector<std::int64_t> items(splits.size() * 8, per_child);
                        parallel_region(r, PhaseKind::RefineSplit, items);
                        break;
                    }
                    case amr::Variant::TampiOss:
                        for (std::size_t i = 0; i < splits.size() * 8; ++i) {
                            dataflow(r, PhaseKind::RefineSplit, per_child + overhead(), {});
                        }
                        break;
                }
            }

            // Coarsening: move children to the parent owner, then merge.
            std::vector<Move> moves;
            std::vector<std::vector<std::pair<const BlockKey*, int>>> merges(
                static_cast<std::size_t>(R_));  // (parent, #remote children)
            int next_id = 0;
            for (const BlockKey& parent : round.coarsen_parents) {
                const int new_owner = structure_.owner(parent.child(0, structure_.max_level()));
                int remote = 0;
                for (int octant = 1; octant < 8; ++octant) {
                    const BlockKey child = parent.child(octant, structure_.max_level());
                    const int child_owner = structure_.owner(child);
                    if (child_owner != new_owner) {
                        moves.push_back(Move{child, child_owner, new_owner, next_id});
                        ++remote;
                    }
                    ++next_id;
                }
                merges[static_cast<std::size_t>(new_owner)].emplace_back(&parent, remote);
            }
            transfer_blocks(moves, /*with_ack=*/false);
            for (int r = 0; r < R_; ++r) {
                const auto& my_merges = merges[static_cast<std::size_t>(r)];
                if (my_merges.empty()) continue;
                const std::int64_t per_merge = 8 * copy_ns(block_bytes());
                switch (refine_variant()) {
                    case amr::Variant::MpiOnly:
                        serial(r, PhaseKind::RefineMerge,
                               static_cast<std::int64_t>(my_merges.size()) * per_merge);
                        break;
                    case amr::Variant::ForkJoin: {
                        std::vector<std::int64_t> items(my_merges.size(), per_merge);
                        parallel_region(r, PhaseKind::RefineMerge, items);
                        break;
                    }
                    case amr::Variant::TampiOss:
                        for (const auto& [parent, remote] : my_merges) {
                            std::vector<Dep> deps;
                            for (int octant = 1; octant < 8; ++octant) {
                                const BlockKey child =
                                    parent->child(octant, structure_.max_level());
                                auto it = move_region_.find(child);
                                if (it != move_region_.end()) {
                                    deps.push_back(dep(DepKind::In, it->second,
                                                       static_cast<std::uint64_t>(block_bytes())));
                                }
                            }
                            dataflow_v(r, PhaseKind::RefineMerge, per_merge + overhead(), deps);
                        }
                        break;
                }
            }
            analytic_collective(8);  // 2:1 agreement round (miniAMR collective)
            structure_.apply_refine_round(round);
            refresh_block_lists();
        }

        // Load balancing.
        if (cfg_.lb_opt && structure_.imbalance() > cfg_.inbalance) {
            for (int r = 0; r < R_; ++r) {
                const auto nblocks =
                    static_cast<std::int64_t>(state_[static_cast<std::size_t>(r)].blocks.size());
                serial(r, PhaseKind::LoadBalance,
                       static_cast<std::int64_t>(costs_.rcb_ns_per_block *
                                                 static_cast<double>(nblocks)));
            }
            const auto new_owners = structure_.rcb_partition();
            std::vector<Move> moves;
            int next_id = 0;
            for (const auto& [key, owner] : structure_.leaves()) {
                const int target = new_owners.at(key);
                if (target != owner) moves.push_back(Move{key, owner, target, next_id});
                ++next_id;
            }
            transfer_blocks(moves, /*with_ack=*/true);
            structure_.set_owners(new_owners);
        }

        analytic_collective(8);
        rebuild_rank_state();
        refine_ns_ += sim_.global_time() - t0;
    }

    void transfer_blocks(const std::vector<Move>& moves, bool with_ack) {
        move_region_.clear();
        if (moves.empty()) return;
        if (with_ack) {
            // §IV-B control protocol: ACK from receiver, block id from
            // sender; sequential blocking messages on the main thread.
            std::vector<SimTaskPtr> acks, ids;
            acks.reserve(moves.size());
            for (const Move& mv : moves) {
                acks.push_back(serial(mv.to, PhaseKind::Control, mpi_call()));
            }
            ids.reserve(moves.size());
            for (std::size_t i = 0; i < moves.size(); ++i) {
                const Move& mv = moves[i];
                // Blocking ACK receive: chained AND message-gated.
                auto ack_recv = sim_.new_task(mv.from, PhaseKind::Control, mpi_call(),
                                              W_ > 1 ? 0 : -1);
                chain(mv.from, ack_recv);
                sim_.submit(ack_recv);
                sim_.add_message(acks[i], ack_recv, 4);
                ids.push_back(serial(mv.from, PhaseKind::Control, mpi_call()));
            }
            for (std::size_t i = 0; i < moves.size(); ++i) {
                const Move& mv = moves[i];
                auto id_recv = sim_.new_task(mv.to, PhaseKind::Control, mpi_call(),
                                             W_ > 1 ? 0 : -1);
                chain(mv.to, id_recv);
                sim_.submit(id_recv);
                sim_.add_message(ids[i], id_recv, 4);
            }
        }
        // Payload transfers.
        const std::int64_t bytes = block_bytes();
        for (const Move& mv : moves) {
            SimTaskPtr send, recv;
            if (refine_tasking()) {
                send = dataflow(mv.from, PhaseKind::RefineExchange, mpi_call() + overhead(), {});
                const std::uint64_t region = alloc_region(
                    state_[static_cast<std::size_t>(mv.to)], static_cast<std::uint64_t>(bytes));
                move_region_[mv.key] = region;
                recv = dataflow(mv.to, PhaseKind::RefineExchange, mpi_call() + overhead(),
                                {dep(DepKind::Out, region, static_cast<std::uint64_t>(bytes))});
            } else {
                send = serial(mv.from, PhaseKind::RefineExchange, mpi_call());
                recv = sim_.new_task(mv.to, PhaseKind::RefineExchange, mpi_call(),
                                     W_ > 1 ? 0 : -1);
                chain(mv.to, recv);  // blocking receive in program order
                sim_.submit(recv);
            }
            sim_.add_message(send, recv, bytes);
        }
    }

    amr::Config cfg_;
    amr::Variant variant_;
    ClusterSpec cluster_;
    CostModel costs_;
    Simulator sim_;
    amr::GlobalStructure structure_;
    amr::BlockShape shape_;
    int R_ = 0, W_ = 1;
    double mem_factor_ = 1.0;

    std::vector<RankState> state_;
    std::vector<tasking::DependencyRegistry> regs_;
    std::map<BlockKey, std::uint64_t> move_region_;
    bool cks_pending_[2] = {false, false};
    int cks_slot_ = 0;
    std::int64_t refine_ns_ = 0;
    std::int64_t flops_ = 0;
};

}  // namespace

SimResult run_simulated(const amr::Config& app, amr::Variant variant, const ClusterSpec& cluster,
                        const CostModel& costs, amr::Tracer* tracer) {
    SimRun run(app, variant, cluster, costs, tracer);
    return run.execute();
}

}  // namespace dfamr::sim
