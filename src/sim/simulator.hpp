// Discrete-event simulator of a cluster executing task graphs — the
// substitute for the paper's 256-node MareNostrum4 testbed.
//
// Model:
//  * The cluster has `nodes × cores_per_node` cores; ranks are pinned to
//    `cores_per_rank` consecutive cores (one core per rank for MPI-only).
//  * A task occupies one core of its rank for its cost. Tasks become ready
//    when every predecessor released its dependencies AND every expected
//    message arrived. A task with `detached_completion` (a TAMPI-bound
//    communication task) frees its core after its body cost but releases
//    its dependencies only when its messages arrive — exactly the external
//    event mechanism of the real library.
//  * Messages leave through the sender node's NIC (serialized egress at the
//    configured bandwidth) and arrive after the network latency. Intra-node
//    messages bypass the NIC.
//  * Collectives hold each member's core from the member's start until the
//    whole group completes (blocking semantics), with a binomial-tree cost.
//  * Scheduling within a rank is FIFO-with-immediate-successor: a finishing
//    task's first ready successor starts on the same core (the OmpSs-2
//    locality policy); others queue.
//
// Determinism: events at equal times are processed in creation order.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <queue>
#include <span>
#include <vector>

#include "amr/trace.hpp"
#include "sim/cost_model.hpp"
#include "tasking/dependency.hpp"

namespace dfamr::sim {

using amr::PhaseKind;
using tasking::Dep;
using tasking::DepNode;

struct ClusterSpec {
    int nodes = 1;
    int cores_per_node = 48;   // MareNostrum4: 2 x 24
    int ranks_per_node = 48;   // 48 for MPI-only, 4/2 for hybrids (Table I)
    int cores_per_socket = 24;  // two NUMA domains per node

    int total_ranks() const { return nodes * ranks_per_node; }
    int cores_per_rank() const { return cores_per_node / ranks_per_node; }
    /// A rank spanning both sockets pays the NUMA penalty on memory-bound
    /// kernels (the Table I "1 rank/node is worst" effect).
    bool rank_spans_sockets() const { return cores_per_rank() > cores_per_socket; }
};

class Simulator;

/// A simulated task. Create via Simulator::new_task, then (optionally)
/// register region dependencies through a tasking::DependencyRegistry, add
/// message/collective bindings, and finally Simulator::submit it.
struct SimTask final : DepNode {
    int rank = 0;
    PhaseKind kind = PhaseKind::Control;
    std::int64_t cost_ns = 0;
    int pinned_core = -1;  // core index within the rank; -1 = any

    /// Messages this task emits on body completion: (target, bytes).
    std::vector<std::pair<SimTask*, std::int64_t>> out_messages;
    /// Messages that must arrive before dependency release. A task with
    /// expected messages frees its core after cost_ns but releases its
    /// dependencies only on the last arrival — TAMPI's external events.
    int pending_messages = 0;

    int collective_id = -1;  // >= 0: member of that collective group

    // Simulation outputs.
    std::int64_t start_ns = -1;
    std::int64_t finish_ns = -1;  // dependency release time

    // Internal state.
    std::int64_t ready_ns = 0;
    bool submitted = false;
    bool body_done = false;
    bool released = false;
};

using SimTaskPtr = std::shared_ptr<SimTask>;

struct SimStats {
    std::uint64_t tasks = 0;
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
    std::uint64_t collectives = 0;
    std::map<PhaseKind, std::int64_t> busy_ns_by_kind;
    std::int64_t busy_ns = 0;
};

class Simulator {
public:
    Simulator(const ClusterSpec& cluster, const CostModel& costs);

    const ClusterSpec& cluster() const { return cluster_; }
    const CostModel& costs() const { return costs_; }

    // --- DAG construction --------------------------------------------------
    SimTaskPtr new_task(int rank, PhaseKind kind, std::int64_t cost_ns, int pinned_core = -1);
    /// Declares that `send`'s completion delivers `bytes` to `recv` (which
    /// gains a pending message). Both must not be submitted yet... recv may
    /// already be submitted; send must not have run.
    void add_message(const SimTaskPtr& send, const SimTaskPtr& recv, std::int64_t bytes);
    /// Creates a collective group; member tasks join via set_collective.
    /// After every member is declared, arm it with close_collective —
    /// completion cannot trigger while the group is still being built.
    int new_collective(std::int64_t bytes_per_rank);
    void set_collective(const SimTaskPtr& task, int collective_id);
    void close_collective(int collective_id);
    /// Hands the task to the scheduler (all deps/messages declared).
    void submit(const SimTaskPtr& task);

    // --- execution ------------------------------------------------------------
    /// Processes events until no runnable work remains. Throws if tasks are
    /// stuck (circular or missing producers).
    void run_until_drained();
    /// Time at which a rank's work so far finished (its cores' last busy).
    std::int64_t rank_time(int rank) const;
    /// max over ranks.
    std::int64_t global_time() const;
    /// Advances every rank to at least `t` (used for analytic collectives
    /// between build segments).
    void advance_all_ranks_to(std::int64_t t);

    const SimStats& stats() const { return stats_; }
    /// Live (submitted, unreleased) tasks — must be 0 after a drain.
    std::size_t live_tasks() const { return live_tasks_; }

    /// Optional tracer: records (rank, core-in-rank, start, end, kind).
    void set_tracer(amr::Tracer* tracer) { tracer_ = tracer; }

private:
    struct Core {
        std::int64_t free_at = 0;
        bool busy = false;
    };
    struct Collective {
        std::int64_t bytes = 0;
        int arrived = 0;
        int expected = 0;
        bool closed = false;
        std::int64_t max_arrival = 0;
        std::vector<SimTask*> members;  // members that started (cores held)
    };
    void maybe_complete_collective(int collective_id);
    struct Event {
        std::int64_t time;
        std::uint64_t seq;
        enum Type { BodyDone, MessageArrival, CollectiveDone } type;
        SimTask* task = nullptr;   // BodyDone / MessageArrival target
        int collective_id = -1;
        bool operator>(const Event& other) const {
            if (time != other.time) return time > other.time;
            return seq > other.seq;
        }
    };

    int first_core_of(int rank) const;
    int node_of(int rank) const;
    void make_ready(SimTask* task, std::int64_t at_time);
    /// Tries to start queued ready tasks of `rank` on idle cores.
    void dispatch(int rank, std::int64_t now);
    void start_task(SimTask* task, int core_global, std::int64_t now);
    void finish_body(SimTask* task, std::int64_t now);
    void release_task(SimTask* task, std::int64_t now);
    void keep_alive(SimTask* task);

    ClusterSpec cluster_;
    CostModel costs_;
    amr::Tracer* tracer_ = nullptr;

    std::vector<Core> cores_;
    std::vector<std::int64_t> nic_free_;         // per node egress availability
    std::vector<std::deque<SimTask*>> ready_;    // per rank (ready, not started)
    std::vector<std::int64_t> rank_resume_;      // per rank baseline time
    std::map<std::uint64_t, int> running_core_;  // task node_id -> global core
    std::vector<Collective> collectives_;

    std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events_;
    std::uint64_t next_seq_ = 1;
    std::uint64_t next_node_id_ = 1;
    std::size_t live_tasks_ = 0;

    // Keeps every submitted task alive until released (successor edges use
    // raw pointers). Compacted with a high-water-mark strategy so the scan
    // cost stays amortized O(1) per task.
    std::vector<SimTaskPtr> retained_;
    std::size_t retained_high_water_ = 1 << 16;

    SimStats stats_;
};

}  // namespace dfamr::sim
