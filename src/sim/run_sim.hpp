// Simulated (DES) execution of the three miniAMR variants on a virtual
// cluster — regenerates the paper's scaling experiments at 4..256 nodes on
// a development machine. The mesh evolution (refinement decisions, load
// balancing, communication patterns) is computed exactly with the same
// amr:: machinery the real drivers use; only kernel execution is replaced
// by the calibrated cost model.
#pragma once

#include "amr/config.hpp"
#include "amr/trace.hpp"
#include "common/geometry.hpp"
#include "sim/simulator.hpp"

namespace dfamr::sim {

struct SimResult {
    double total_s = 0;
    double refine_s = 0;
    double non_refine_s() const { return total_s - refine_s; }
    std::int64_t total_flops = 0;
    double gflops() const { return total_s > 0 ? static_cast<double>(total_flops) / total_s * 1e-9 : 0; }
    std::int64_t final_blocks = 0;
    SimStats stats;
};

/// Near-cubic factorization of n into three factors (descending-balanced).
Vec3i factor3(int n);
/// A rank grid with product `nranks` whose components divide `blocks`.
/// Throws ConfigError when impossible.
Vec3i rank_grid_dividing(Vec3i blocks, int nranks);
/// Configures cfg's rank grid (npx..) and per-rank initial blocks (init_*)
/// so that the global level-0 block grid is exactly `block_grid` while
/// running on `total_ranks` ranks — the paper's weak-scaling constraint
/// that every variant simulates the same mesh (§V-C).
void arrange(amr::Config& cfg, Vec3i block_grid, int total_ranks);

/// Runs the full mini-app under the DES. `app`'s rank grid must match
/// cluster.total_ranks(); cfg.workers is ignored (cluster decides cores per
/// rank). An optional tracer records simulated per-core timelines (Fig 1-3).
SimResult run_simulated(const amr::Config& app, amr::Variant variant, const ClusterSpec& cluster,
                        const CostModel& costs, amr::Tracer* tracer = nullptr);

}  // namespace dfamr::sim
