// Little-endian fixed-width binary codec helpers, shared by every layer
// that speaks a byte format (checkpoint images, the serve request
// protocol). Writer appends to a growable byte vector; Reader consumes a
// non-owning view and throws dfamr::Error on underflow, so truncated input
// can never read out of bounds.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace dfamr::bytes {

struct Writer {
    std::vector<std::byte> bytes;

    void raw(const void* p, std::size_t n) {
        const auto* b = static_cast<const std::byte*>(p);
        bytes.insert(bytes.end(), b, b + n);
    }
    void u32(std::uint32_t v) { raw(&v, sizeof v); }
    void u64(std::uint64_t v) { raw(&v, sizeof v); }
    void i32(std::int32_t v) { raw(&v, sizeof v); }
    void i64(std::int64_t v) { raw(&v, sizeof v); }
    void f64(double v) { raw(&v, sizeof v); }
    /// Length-prefixed (u32) string.
    void str(const std::string& s) {
        u32(static_cast<std::uint32_t>(s.size()));
        raw(s.data(), s.size());
    }
};

struct Reader {
    const std::byte* p = nullptr;
    std::size_t left = 0;

    Reader() = default;
    Reader(const std::byte* data, std::size_t n) : p(data), left(n) {}
    explicit Reader(std::span<const std::byte> in) : p(in.data()), left(in.size()) {}

    void raw(void* out, std::size_t n) {
        DFAMR_REQUIRE(n <= left, "codec: truncated input");
        std::memcpy(out, p, n);
        p += n;
        left -= n;
    }
    std::uint32_t u32() {
        std::uint32_t v;
        raw(&v, sizeof v);
        return v;
    }
    std::uint64_t u64() {
        std::uint64_t v;
        raw(&v, sizeof v);
        return v;
    }
    std::int32_t i32() {
        std::int32_t v;
        raw(&v, sizeof v);
        return v;
    }
    std::int64_t i64() {
        std::int64_t v;
        raw(&v, sizeof v);
        return v;
    }
    double f64() {
        double v;
        raw(&v, sizeof v);
        return v;
    }
    std::string str() {
        const std::uint32_t n = u32();
        DFAMR_REQUIRE(n <= left, "codec: truncated string");
        std::string s(reinterpret_cast<const char*>(p), n);
        p += n;
        left -= n;
        return s;
    }
};

}  // namespace dfamr::bytes
