// Plain-text table printer used by the table/figure benches to print
// paper-style rows.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dfamr {

class TextTable {
public:
    explicit TextTable(std::vector<std::string> headers);

    void add_row(std::vector<std::string> cells);
    /// Convenience: formats doubles with the given precision.
    static std::string num(double v, int precision = 2);

    void print(std::ostream& os) const;
    std::string to_string() const;
    /// Comma-separated dump (for EXPERIMENTS.md extraction and plotting).
    std::string to_csv() const;

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace dfamr
