#include "common/lockdep.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>

namespace dfamr::lockdep {

namespace detail {

namespace {

constexpr int kMaxClasses = 64;

struct HeldLock {
    int cls = -1;
    std::uint32_t subrank = 0;
};

struct Registry {
    // Guards interning, witness recording and new-edge insertion. A plain
    // std::mutex, deliberately uninstrumented (and a leaf: nothing else is
    // acquired under it), so lockdep cannot observe itself.
    std::mutex m;
    std::vector<std::string> names;
    std::vector<Nesting> nestings;
    std::map<std::string, int> by_name;
    // Class-level acquisition-order matrix: edge[a][b] means "a was held
    // while b was acquired". Atomic so the hot path can probe without m.
    std::atomic<bool> edge[kMaxClasses][kMaxClasses] = {};
    std::vector<Witness> witnesses;
    // Dedup: one witness per offending (held, acquired) class pair.
    std::atomic<bool> reported[kMaxClasses][kMaxClasses] = {};
};

Registry& reg() {
    // Deliberately leaked: the install_exit_check atexit handler (registered
    // at static-init time, before the lazy first intern) runs AFTER this
    // object's destructor would, so a function-local static would be read
    // after destruction. Immortalize it instead.
    static Registry* r = new Registry;
    return *r;
}

std::vector<HeldLock>& tls_held() {
    thread_local std::vector<HeldLock> held;
    return held;
}

/// DFS over the edge matrix: is `to` reachable from `from`?  Fills `path`
/// with the class chain from -> ... -> to when it is. Caller holds reg().m
/// (the matrix may gain edges concurrently; a racy extra edge only makes
/// reachability conservative, never wrong, because edges are never removed
/// outside reset()).
bool find_path(const Registry& r, int from, int to, int nclasses, std::vector<int>& path) {
    std::vector<int> stack{from};
    std::vector<int> parent(static_cast<std::size_t>(nclasses), -1);
    std::vector<char> seen(static_cast<std::size_t>(nclasses), 0);
    seen[static_cast<std::size_t>(from)] = 1;
    while (!stack.empty()) {
        const int cur = stack.back();
        stack.pop_back();
        if (cur == to) {
            for (int x = to; x != -1; x = parent[static_cast<std::size_t>(x)]) {
                path.push_back(x);
            }
            std::reverse(path.begin(), path.end());
            return true;
        }
        for (int next = 0; next < nclasses; ++next) {
            if (!seen[static_cast<std::size_t>(next)] &&
                r.edge[cur][next].load(std::memory_order_relaxed)) {
                seen[static_cast<std::size_t>(next)] = 1;
                parent[static_cast<std::size_t>(next)] = cur;
                stack.push_back(next);
            }
        }
    }
    return false;
}

void record_witness(Registry& r, int held, int acquired, const std::string& message,
                    std::vector<std::string> chain) {
    if (r.reported[held][acquired].exchange(true, std::memory_order_relaxed)) return;
    Witness w;
    w.message = message;
    w.chain = std::move(chain);
    std::lock_guard lock(r.m);
    r.witnesses.push_back(std::move(w));
}

/// Records the class-level edge held -> acquired; on a NEW edge, checks
/// whether the reverse direction was already reachable (a cycle closed).
void record_edge(int held, int acquired) {
    Registry& r = reg();
    if (r.edge[held][acquired].load(std::memory_order_relaxed)) return;
    std::vector<int> path;
    std::string msg;
    std::vector<std::string> chain;
    {
        std::lock_guard lock(r.m);
        if (r.edge[held][acquired].exchange(true, std::memory_order_relaxed)) return;
        const int n = static_cast<int>(r.names.size());
        // The new edge held -> acquired closes a cycle iff held was already
        // reachable from acquired.
        if (!find_path(r, acquired, held, n, path)) return;
        std::ostringstream os;
        os << "lock-order cycle: ";
        for (int c : path) {
            os << r.names[static_cast<std::size_t>(c)] << " -> ";
            chain.push_back(r.names[static_cast<std::size_t>(c)]);
        }
        os << r.names[static_cast<std::size_t>(acquired)]
           << " (this thread acquired " << r.names[static_cast<std::size_t>(acquired)]
           << " while holding " << r.names[static_cast<std::size_t>(held)]
           << "; the opposite order was observed before)";
        chain.push_back(r.names[static_cast<std::size_t>(acquired)]);
        msg = os.str();
    }
    record_witness(r, held, acquired, msg, std::move(chain));
}

}  // namespace

int intern(const char* name, Nesting nesting) {
    Registry& r = reg();
    std::lock_guard lock(r.m);
    const std::string key(name);
    auto it = r.by_name.find(key);
    if (it != r.by_name.end()) return it->second;
    const int id = static_cast<int>(r.names.size());
    if (id >= kMaxClasses) {
        std::fprintf(stderr, "lockdep: too many lock classes (max %d), '%s' untracked\n",
                     kMaxClasses, name);
        return kMaxClasses - 1;  // merge overflow into the last class
    }
    r.names.push_back(key);
    r.nestings.push_back(nesting);
    r.by_name.emplace(key, id);
    return id;
}

void on_acquire(int cls, std::uint32_t subrank) {
    Registry& r = reg();
    std::vector<HeldLock>& held = tls_held();
    for (const HeldLock& h : held) {
        if (h.cls == cls) {
            Nesting n;
            std::string name;
            {
                std::lock_guard lock(r.m);
                n = r.nestings[static_cast<std::size_t>(cls)];
                name = r.names[static_cast<std::size_t>(cls)];
            }
            const bool bad = n == Nesting::Never || h.subrank >= subrank;
            if (bad) {
                std::ostringstream os;
                os << "same-class nesting violation on '" << name << "': ";
                if (n == Nesting::Never) {
                    os << "class forbids holding two instances at once";
                } else {
                    os << "subrank " << subrank << " acquired while holding subrank "
                       << h.subrank << " (ascending order required)";
                }
                record_witness(r, cls, cls, os.str(), {name, name});
            }
        } else {
            record_edge(h.cls, cls);
        }
    }
    held.push_back(HeldLock{cls, subrank});
}

void on_release(int cls) {
    std::vector<HeldLock>& held = tls_held();
    if (held.empty()) return;  // acquired before lockdep was enabled
    // Locks may be released out of LIFO order (unique_lock juggling):
    // remove the most recent matching entry.
    for (auto it = held.rbegin(); it != held.rend(); ++it) {
        if (it->cls == cls) {
            held.erase(std::next(it).base());
            return;
        }
    }
}

}  // namespace detail

void enable() { detail::g_enabled.store(true, std::memory_order_relaxed); }
void disable() { detail::g_enabled.store(false, std::memory_order_relaxed); }

void reset() {
    auto& r = detail::reg();
    std::lock_guard lock(r.m);
    const int n = static_cast<int>(r.names.size());
    for (int a = 0; a < n; ++a) {
        for (int b = 0; b < n; ++b) {
            r.edge[a][b].store(false, std::memory_order_relaxed);
            r.reported[a][b].store(false, std::memory_order_relaxed);
        }
    }
    r.witnesses.clear();
}

Report report() {
    auto& r = detail::reg();
    std::lock_guard lock(r.m);
    Report out;
    out.classes = r.names;
    const int n = static_cast<int>(r.names.size());
    for (int a = 0; a < n; ++a) {
        for (int b = 0; b < n; ++b) {
            if (r.edge[a][b].load(std::memory_order_relaxed)) {
                out.edges.emplace_back(r.names[static_cast<std::size_t>(a)],
                                       r.names[static_cast<std::size_t>(b)]);
            }
        }
    }
    out.witnesses = r.witnesses;
    return out;
}

std::string Report::to_string() const {
    std::ostringstream os;
    os << "lockdep: " << classes.size() << " lock class(es), " << edges.size()
       << " acquisition-order edge(s), " << witnesses.size() << " witness(es)\n";
    for (const Witness& w : witnesses) {
        os << "  [witness] " << w.message << '\n';
    }
    return os.str();
}

void install_exit_check() {
    static bool installed = false;
    if (installed) return;
    installed = true;
    std::atexit([] {
        const Report r = report();
        if (!r.clean()) {
            std::fputs(r.to_string().c_str(), stderr);
            std::fputs("lockdep: potential deadlock witnessed — failing the run\n", stderr);
            std::_Exit(86);
        }
    });
}

namespace {

/// DFAMR_VERIFY builds turn lockdep on for every binary (and gate exit);
/// DFAMR_LOCKDEP=1 / =0 in the environment overrides either way.
[[maybe_unused]] const bool g_auto_enable = [] {
    bool on = false;
#if defined(DFAMR_VERIFY)
    on = true;
#endif
    if (const char* env = std::getenv("DFAMR_LOCKDEP")) on = env[0] != '0';
    if (on) {
        enable();
        install_exit_check();
    }
    return on;
}();

}  // namespace

}  // namespace dfamr::lockdep
