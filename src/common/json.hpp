// Minimal JSON parser — just enough for the tools and tests that consume
// the JSON this project emits (metrics snapshots, Chrome traces, bench
// output). Recursive descent over the full value grammar; numbers are
// doubles (the emitters never exceed 2^53); no streaming, no comments.
// Header-only so tools can use it without a library dependency.
#pragma once

#include <cmath>
#include <cstdlib>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace dfamr::json {

class ParseError : public std::runtime_error {
public:
    explicit ParseError(const std::string& what) : std::runtime_error("json: " + what) {}
};

class Value {
public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Value() = default;
    explicit Value(bool b) : kind_(Kind::Bool), bool_(b) {}
    explicit Value(double d) : kind_(Kind::Number), num_(d) {}
    explicit Value(std::string s) : kind_(Kind::String), str_(std::move(s)) {}

    Kind kind() const { return kind_; }
    bool is_null() const { return kind_ == Kind::Null; }
    bool is_bool() const { return kind_ == Kind::Bool; }
    bool is_number() const { return kind_ == Kind::Number; }
    bool is_string() const { return kind_ == Kind::String; }
    bool is_array() const { return kind_ == Kind::Array; }
    bool is_object() const { return kind_ == Kind::Object; }

    bool as_bool() const {
        require(Kind::Bool, "bool");
        return bool_;
    }
    double as_double() const {
        require(Kind::Number, "number");
        return num_;
    }
    std::int64_t as_int() const { return static_cast<std::int64_t>(std::llround(as_double())); }
    const std::string& as_string() const {
        require(Kind::String, "string");
        return str_;
    }
    const std::vector<Value>& items() const {
        require(Kind::Array, "array");
        return arr_;
    }
    const std::map<std::string, Value>& members() const {
        require(Kind::Object, "object");
        return obj_;
    }

    std::size_t size() const { return is_array() ? arr_.size() : members().size(); }
    bool contains(const std::string& key) const { return members().count(key) != 0; }
    const Value& at(const std::string& key) const {
        const auto it = members().find(key);
        if (it == obj_.end()) throw ParseError("missing key '" + key + "'");
        return it->second;
    }
    const Value& at(std::size_t i) const {
        if (i >= items().size()) throw ParseError("array index out of range");
        return arr_[i];
    }

    static Value array(std::vector<Value> items) {
        Value v;
        v.kind_ = Kind::Array;
        v.arr_ = std::move(items);
        return v;
    }
    static Value object(std::map<std::string, Value> members) {
        Value v;
        v.kind_ = Kind::Object;
        v.obj_ = std::move(members);
        return v;
    }

private:
    void require(Kind k, const char* name) const {
        if (kind_ != k) throw ParseError(std::string("value is not a ") + name);
    }

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double num_ = 0;
    std::string str_;
    std::vector<Value> arr_;
    std::map<std::string, Value> obj_;
};

namespace detail {

class Parser {
public:
    explicit Parser(const std::string& text) : s_(text) {}

    Value parse() {
        Value v = value();
        skip_ws();
        if (pos_ != s_.size()) fail("trailing characters after value");
        return v;
    }

private:
    [[noreturn]] void fail(const std::string& msg) const {
        throw ParseError(msg + " at offset " + std::to_string(pos_));
    }

    void skip_ws() {
        while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                                    s_[pos_] == '\r')) {
            ++pos_;
        }
    }

    char peek() {
        skip_ws();
        if (pos_ >= s_.size()) fail("unexpected end of input");
        return s_[pos_];
    }

    void expect(char c) {
        if (peek() != c) fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool consume_literal(const char* lit) {
        const std::size_t n = std::string(lit).size();
        if (s_.compare(pos_, n, lit) != 0) return false;
        pos_ += n;
        return true;
    }

    Value value() {
        switch (peek()) {
            case '{': return object();
            case '[': return array();
            case '"': return Value(string());
            case 't':
                if (!consume_literal("true")) fail("bad literal");
                return Value(true);
            case 'f':
                if (!consume_literal("false")) fail("bad literal");
                return Value(false);
            case 'n':
                if (!consume_literal("null")) fail("bad literal");
                return Value();
            default: return number();
        }
    }

    Value object() {
        expect('{');
        std::map<std::string, Value> members;
        if (peek() == '}') {
            ++pos_;
            return Value::object(std::move(members));
        }
        while (true) {
            if (peek() != '"') fail("expected object key");
            std::string key = string();
            expect(':');
            members[std::move(key)] = value();
            const char c = peek();
            ++pos_;
            if (c == '}') return Value::object(std::move(members));
            if (c != ',') fail("expected ',' or '}'");
        }
    }

    Value array() {
        expect('[');
        std::vector<Value> items;
        if (peek() == ']') {
            ++pos_;
            return Value::array(std::move(items));
        }
        while (true) {
            items.push_back(value());
            const char c = peek();
            ++pos_;
            if (c == ']') return Value::array(std::move(items));
            if (c != ',') fail("expected ',' or ']'");
        }
    }

    std::string string() {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= s_.size()) fail("unterminated string");
            const char c = s_[pos_++];
            if (c == '"') return out;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= s_.size()) fail("unterminated escape");
            const char e = s_[pos_++];
            switch (e) {
                case '"': out.push_back('"'); break;
                case '\\': out.push_back('\\'); break;
                case '/': out.push_back('/'); break;
                case 'b': out.push_back('\b'); break;
                case 'f': out.push_back('\f'); break;
                case 'n': out.push_back('\n'); break;
                case 'r': out.push_back('\r'); break;
                case 't': out.push_back('\t'); break;
                case 'u': {
                    if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = s_[pos_++];
                        code <<= 4;
                        if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
                        else fail("bad hex digit in \\u escape");
                    }
                    // UTF-8 encode (surrogate pairs unsupported: the project's
                    // emitters write ASCII only).
                    if (code < 0x80) {
                        out.push_back(static_cast<char>(code));
                    } else if (code < 0x800) {
                        out.push_back(static_cast<char>(0xC0 | (code >> 6)));
                        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
                    } else {
                        out.push_back(static_cast<char>(0xE0 | (code >> 12)));
                        out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
                        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
                    }
                    break;
                }
                default: fail("unknown escape");
            }
        }
    }

    Value number() {
        const std::size_t start = pos_;
        if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
                s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-')) {
            ++pos_;
        }
        if (pos_ == start) fail("expected a value");
        char* end = nullptr;
        const std::string tok = s_.substr(start, pos_ - start);
        const double d = std::strtod(tok.c_str(), &end);
        if (end == nullptr || *end != '\0') fail("malformed number '" + tok + "'");
        return Value(d);
    }

    const std::string& s_;
    std::size_t pos_ = 0;
};

}  // namespace detail

inline Value parse(const std::string& text) { return detail::Parser(text).parse(); }

}  // namespace dfamr::json
