// Wall-clock timing helpers (real-execution mode and calibration).
#pragma once

#include <chrono>
#include <cstdint>

namespace dfamr {

inline std::int64_t now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/// Stopwatch accumulating elapsed nanoseconds across start/stop pairs.
class Stopwatch {
public:
    void start() { start_ns_ = now_ns(); }
    void stop() { total_ns_ += now_ns() - start_ns_; }
    void reset() { total_ns_ = 0; }

    std::int64_t elapsed_ns() const { return total_ns_; }
    double elapsed_s() const { return static_cast<double>(total_ns_) * 1e-9; }

private:
    std::int64_t start_ns_ = 0;
    std::int64_t total_ns_ = 0;
};

/// RAII scope timer adding elapsed time to an external accumulator.
class ScopeTimer {
public:
    explicit ScopeTimer(std::int64_t& sink) : sink_(sink), begin_(now_ns()) {}
    ~ScopeTimer() { sink_ += now_ns() - begin_; }
    ScopeTimer(const ScopeTimer&) = delete;
    ScopeTimer& operator=(const ScopeTimer&) = delete;

private:
    std::int64_t& sink_;
    std::int64_t begin_;
};

}  // namespace dfamr
