// Threading primitives shared by the mpisim thread transport and the
// tasking runtime.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace dfamr {

/// Reusable barrier for a fixed set of participants (C++20 std::barrier is
/// available but we need a count reachable from tests and a simple wait()).
class ThreadBarrier {
public:
    explicit ThreadBarrier(int participants) : participants_(participants) {}

    void wait() {
        std::unique_lock lock(mutex_);
        const std::uint64_t gen = generation_;
        if (++arrived_ == participants_) {
            arrived_ = 0;
            ++generation_;
            cv_.notify_all();
        } else {
            cv_.wait(lock, [&] { return generation_ != gen; });
        }
    }

private:
    std::mutex mutex_;
    std::condition_variable cv_;
    int participants_;
    int arrived_ = 0;
    std::uint64_t generation_ = 0;
};

/// Single-use countdown latch.
class CountdownLatch {
public:
    explicit CountdownLatch(std::int64_t count) : count_(count) {}

    void count_down(std::int64_t n = 1) {
        std::lock_guard lock(mutex_);
        count_ -= n;
        if (count_ <= 0) cv_.notify_all();
    }

    void wait() {
        std::unique_lock lock(mutex_);
        cv_.wait(lock, [&] { return count_ <= 0; });
    }

private:
    std::mutex mutex_;
    std::condition_variable cv_;
    std::int64_t count_;
};

/// Test-and-test-and-set spinlock for very short critical sections.
class SpinLock {
public:
    void lock() {
        while (flag_.test_and_set(std::memory_order_acquire)) {
            while (flag_.test(std::memory_order_relaxed)) {
            }
        }
    }
    void unlock() { flag_.clear(std::memory_order_release); }
    bool try_lock() { return !flag_.test_and_set(std::memory_order_acquire); }

private:
    std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

}  // namespace dfamr
