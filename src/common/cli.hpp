// Minimal miniAMR-style command-line parser.
//
// miniAMR options look like `--nx 10 --num_objects 1 ...`; flags may take
// zero, one, or a fixed number of values. Examples and benches share this
// parser so every binary documents itself with --help.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dfamr {

class CliParser {
public:
    explicit CliParser(std::string program_description);

    /// Registers an option taking one value, parsed on demand.
    void add_option(const std::string& name, const std::string& help,
                    const std::string& default_value = "");
    /// Registers a boolean flag (no value; present = true).
    void add_flag(const std::string& name, const std::string& help);
    /// Registers an option that may appear multiple times, each with `arity` values
    /// (miniAMR's repeated --object spec).
    void add_multi_option(const std::string& name, int arity, const std::string& help);

    /// Parses argv. Throws ConfigError on unknown options or missing values.
    /// Returns false if --help was requested (help text already printed).
    bool parse(int argc, const char* const* argv);

    bool has(const std::string& name) const;
    std::string get_string(const std::string& name) const;
    std::int64_t get_int(const std::string& name) const;
    double get_double(const std::string& name) const;
    bool get_flag(const std::string& name) const;
    /// All occurrences of a multi-option; each inner vector has `arity` entries.
    const std::vector<std::vector<std::string>>& get_multi(const std::string& name) const;

    std::string help_text() const;

private:
    struct Spec {
        std::string help;
        int arity = 1;       // values per occurrence; 0 = flag
        bool multi = false;  // may repeat
        std::string default_value;
    };

    const Spec& spec_for(const std::string& name) const;

    std::string description_;
    std::string program_name_;
    std::map<std::string, Spec> specs_;
    std::map<std::string, std::vector<std::vector<std::string>>> values_;
    static const std::vector<std::vector<std::string>> kEmpty;
};

}  // namespace dfamr
