// 3D geometry primitives used by the AMR mesh and the input objects.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <ostream>

namespace dfamr {

/// Small fixed 3-vector. T is double (positions/sizes) or int (grid indices).
template <typename T>
struct Vec3 {
    T x{}, y{}, z{};

    constexpr T& operator[](int i) { return i == 0 ? x : (i == 1 ? y : z); }
    constexpr const T& operator[](int i) const { return i == 0 ? x : (i == 1 ? y : z); }

    friend constexpr Vec3 operator+(Vec3 a, Vec3 b) { return {a.x + b.x, a.y + b.y, a.z + b.z}; }
    friend constexpr Vec3 operator-(Vec3 a, Vec3 b) { return {a.x - b.x, a.y - b.y, a.z - b.z}; }
    friend constexpr Vec3 operator*(Vec3 a, T s) { return {a.x * s, a.y * s, a.z * s}; }
    friend constexpr Vec3 operator*(T s, Vec3 a) { return a * s; }
    friend constexpr bool operator==(const Vec3&, const Vec3&) = default;

    constexpr T product() const { return x * y * z; }

    friend std::ostream& operator<<(std::ostream& os, const Vec3& v) {
        return os << '(' << v.x << ',' << v.y << ',' << v.z << ')';
    }
};

using Vec3d = Vec3<double>;
using Vec3i = Vec3<int>;
using Vec3l = Vec3<std::int64_t>;

/// Axis-aligned box, [lo, hi] in each dimension.
struct Box {
    Vec3d lo{}, hi{};

    constexpr Vec3d center() const { return {(lo.x + hi.x) * 0.5, (lo.y + hi.y) * 0.5, (lo.z + hi.z) * 0.5}; }
    constexpr Vec3d extent() const { return hi - lo; }

    constexpr bool intersects(const Box& o) const {
        return lo.x <= o.hi.x && o.lo.x <= hi.x && lo.y <= o.hi.y && o.lo.y <= hi.y &&
               lo.z <= o.hi.z && o.lo.z <= hi.z;
    }
    /// True when `o` lies entirely inside this box.
    constexpr bool contains(const Box& o) const {
        return lo.x <= o.lo.x && o.hi.x <= hi.x && lo.y <= o.lo.y && o.hi.y <= hi.y &&
               lo.z <= o.lo.z && o.hi.z <= hi.z;
    }
    constexpr bool contains(const Vec3d& p) const {
        return lo.x <= p.x && p.x <= hi.x && lo.y <= p.y && p.y <= hi.y && lo.z <= p.z && p.z <= hi.z;
    }

    friend constexpr bool operator==(const Box&, const Box&) = default;

    friend std::ostream& operator<<(std::ostream& os, const Box& b) {
        return os << '[' << b.lo << ".." << b.hi << ']';
    }
};

/// The eight corners of a box (used by object containment tests).
inline std::array<Vec3d, 8> corners(const Box& b) {
    return {Vec3d{b.lo.x, b.lo.y, b.lo.z}, Vec3d{b.hi.x, b.lo.y, b.lo.z},
            Vec3d{b.lo.x, b.hi.y, b.lo.z}, Vec3d{b.hi.x, b.hi.y, b.lo.z},
            Vec3d{b.lo.x, b.lo.y, b.hi.z}, Vec3d{b.hi.x, b.lo.y, b.hi.z},
            Vec3d{b.lo.x, b.hi.y, b.hi.z}, Vec3d{b.hi.x, b.hi.y, b.hi.z}};
}

}  // namespace dfamr
