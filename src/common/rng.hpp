// Deterministic, seedable PRNG (splitmix64-seeded xoshiro256**).
// We do not use std::mt19937 in hot paths: xoshiro is faster and the
// implementation is pinned so results are reproducible across platforms.
#pragma once

#include <cstdint>

namespace dfamr {

class Rng {
public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
        // splitmix64 expansion of the seed into the xoshiro state.
        std::uint64_t x = seed;
        for (auto& word : state_) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    std::uint64_t next_u64() {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform in [0, 1).
    double next_double() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

    /// Uniform in [lo, hi).
    double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

    /// Uniform integer in [0, n).
    std::uint64_t below(std::uint64_t n) { return n == 0 ? 0 : next_u64() % n; }

private:
    static constexpr std::uint64_t rotl(std::uint64_t v, int k) {
        return (v << k) | (v >> (64 - k));
    }
    std::uint64_t state_[4];
};

}  // namespace dfamr
