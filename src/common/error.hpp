// Error handling primitives shared across all dfamr modules.
//
// Two families:
//  - DFAMR_REQUIRE(cond, msg): precondition / invariant check that stays on in
//    release builds; throws dfamr::Error so tests can assert on failures.
//  - DFAMR_ASSERT(cond): cheap internal sanity check, compiled out in NDEBUG.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace dfamr {

/// Base exception for all dfamr failures.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown on invalid user-facing configuration (CLI options, config structs).
class ConfigError : public Error {
public:
    explicit ConfigError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_require_failure(const char* expr, const char* file, int line,
                                               const std::string& msg) {
    std::ostringstream os;
    os << "requirement failed: (" << expr << ") at " << file << ':' << line;
    if (!msg.empty()) os << " — " << msg;
    throw Error(os.str());
}
}  // namespace detail

}  // namespace dfamr

#define DFAMR_REQUIRE(cond, msg)                                                       \
    do {                                                                               \
        if (!(cond)) {                                                                 \
            ::dfamr::detail::throw_require_failure(#cond, __FILE__, __LINE__, (msg));  \
        }                                                                              \
    } while (0)

#ifdef NDEBUG
#define DFAMR_ASSERT(cond) ((void)0)
#else
#define DFAMR_ASSERT(cond) DFAMR_REQUIRE(cond, "internal assertion")
#endif
