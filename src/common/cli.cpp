#include "common/cli.hpp"

#include <cstdlib>
#include <iostream>
#include <sstream>

#include "common/error.hpp"

namespace dfamr {

const std::vector<std::vector<std::string>> CliParser::kEmpty;

CliParser::CliParser(std::string program_description)
    : description_(std::move(program_description)) {
    add_flag("--help", "print this help text and exit");
}

void CliParser::add_option(const std::string& name, const std::string& help,
                           const std::string& default_value) {
    specs_[name] = Spec{help, 1, false, default_value};
}

void CliParser::add_flag(const std::string& name, const std::string& help) {
    specs_[name] = Spec{help, 0, false, ""};
}

void CliParser::add_multi_option(const std::string& name, int arity, const std::string& help) {
    DFAMR_REQUIRE(arity >= 1, "multi-option arity must be positive");
    specs_[name] = Spec{help, arity, true, ""};
}

bool CliParser::parse(int argc, const char* const* argv) {
    program_name_ = argc > 0 ? argv[0] : "program";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto it = specs_.find(arg);
        if (it == specs_.end()) {
            throw ConfigError("unknown option '" + arg + "' (try --help)");
        }
        const Spec& spec = it->second;
        std::vector<std::string> occurrence;
        for (int v = 0; v < spec.arity; ++v) {
            if (i + 1 >= argc) {
                throw ConfigError("option '" + arg + "' expects " + std::to_string(spec.arity) +
                                  " value(s)");
            }
            occurrence.emplace_back(argv[++i]);
        }
        if (!spec.multi && values_.count(arg)) {
            values_[arg] = {occurrence};  // last occurrence wins, like miniAMR
        } else {
            values_[arg].push_back(occurrence);
        }
    }
    if (get_flag("--help")) {
        std::cout << help_text();
        return false;
    }
    return true;
}

const CliParser::Spec& CliParser::spec_for(const std::string& name) const {
    auto it = specs_.find(name);
    DFAMR_REQUIRE(it != specs_.end(), "option '" + name + "' was never registered");
    return it->second;
}

bool CliParser::has(const std::string& name) const {
    spec_for(name);
    return values_.count(name) > 0;
}

std::string CliParser::get_string(const std::string& name) const {
    const Spec& spec = spec_for(name);
    DFAMR_REQUIRE(spec.arity == 1 && !spec.multi, "'" + name + "' is not a single-value option");
    auto it = values_.find(name);
    if (it == values_.end()) return spec.default_value;
    return it->second.back().front();
}

std::int64_t CliParser::get_int(const std::string& name) const {
    const std::string s = get_string(name);
    try {
        std::size_t pos = 0;
        const std::int64_t v = std::stoll(s, &pos);
        DFAMR_REQUIRE(pos == s.size(), "trailing characters");
        return v;
    } catch (const std::exception&) {
        throw ConfigError("option '" + name + "': '" + s + "' is not an integer");
    }
}

double CliParser::get_double(const std::string& name) const {
    const std::string s = get_string(name);
    try {
        std::size_t pos = 0;
        const double v = std::stod(s, &pos);
        DFAMR_REQUIRE(pos == s.size(), "trailing characters");
        return v;
    } catch (const std::exception&) {
        throw ConfigError("option '" + name + "': '" + s + "' is not a number");
    }
}

bool CliParser::get_flag(const std::string& name) const {
    const Spec& spec = spec_for(name);
    DFAMR_REQUIRE(spec.arity == 0, "'" + name + "' is not a flag");
    return values_.count(name) > 0;
}

const std::vector<std::vector<std::string>>& CliParser::get_multi(const std::string& name) const {
    const Spec& spec = spec_for(name);
    DFAMR_REQUIRE(spec.multi, "'" + name + "' is not a multi-option");
    auto it = values_.find(name);
    return it == values_.end() ? kEmpty : it->second;
}

std::string CliParser::help_text() const {
    std::ostringstream os;
    os << description_ << "\n\nUsage: " << program_name_ << " [options]\n\nOptions:\n";
    for (const auto& [name, spec] : specs_) {
        os << "  " << name;
        if (spec.arity == 1) os << " <value>";
        if (spec.arity > 1) os << " <" << spec.arity << " values>";
        if (spec.multi) os << " (repeatable)";
        os << "\n      " << spec.help;
        if (!spec.default_value.empty()) os << " [default: " << spec.default_value << "]";
        os << "\n";
    }
    return os.str();
}

}  // namespace dfamr
