#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace dfamr {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
    DFAMR_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
    DFAMR_REQUIRE(cells.size() == headers_.size(), "row width must match header width");
    rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

void TextTable::print(std::ostream& os) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
    }

    auto print_row = [&](const std::vector<std::string>& row) {
        os << '|';
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << ' ' << row[c] << std::string(widths[c] - row[c].size(), ' ') << " |";
        }
        os << '\n';
    };

    print_row(headers_);
    os << '|';
    for (std::size_t c = 0; c < headers_.size(); ++c) os << std::string(widths[c] + 2, '-') << '|';
    os << '\n';
    for (const auto& row : rows_) print_row(row);
}

std::string TextTable::to_string() const {
    std::ostringstream os;
    print(os);
    return os.str();
}

std::string TextTable::to_csv() const {
    std::ostringstream os;
    auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c) os << ',';
            os << row[c];
        }
        os << '\n';
    };
    emit(headers_);
    for (const auto& row : rows_) emit(row);
    return os.str();
}

}  // namespace dfamr
