// Lockdep — lock-order analyzer in the spirit of the Linux kernel's lockdep.
//
// Deadlocks need four locks... no: two locks and two threads acquiring them
// in opposite orders — and the overlap window is so narrow that stress tests
// essentially never hit it. Lockdep removes the timing from the equation:
// every instrumented lock belongs to a named CLASS (all 64 registry shards
// are one class, every Task's node spinlock is one class), and every
// acquisition made while other locks are held records a class-level edge
// "held-class -> acquired-class" in one global acquisition-order graph. A
// cycle in that graph is a potential deadlock, and it is reported the FIRST
// time the inverted order is observed — even on a single thread, even if the
// run never deadlocks.
//
// Same-class nesting is governed by a per-class policy:
//   Nesting::Never   — two locks of the class must never be held at once
//                      (task node locks, mailboxes);
//   Nesting::Ordered — nesting is legal only in ascending subrank order
//                      (registry shards, locked in ascending shard index).
//
// Cost model (the VerifyHook pattern): when lockdep is disabled, lock() and
// unlock() add one relaxed atomic load and a predictable branch — no
// allocation, no thread-local access, no shared writes. Enabled, the hot
// path is a thread-local stack walk plus a lock-free edge-matrix probe;
// the registry mutex is taken only when a never-before-seen edge appears.
//
// Enablement: DFAMR_VERIFY builds enable lockdep at static initialization
// and install an atexit gate that fails the process (exit 86) if any
// witness was recorded. The environment overrides in any build:
// DFAMR_LOCKDEP=1 forces it on, DFAMR_LOCKDEP=0 forces it off.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace dfamr::lockdep {

enum class Nesting : std::uint8_t { Never, Ordered };

namespace detail {

inline std::atomic<bool> g_enabled{false};
inline bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

/// Interns a class by name (idempotent); returns its dense id.
int intern(const char* name, Nesting nesting);
void on_acquire(int cls, std::uint32_t subrank);
void on_release(int cls);

}  // namespace detail

/// Starts recording. Existing graph state is kept (cumulative).
void enable();
/// Stops recording; held-stack bookkeeping still unwinds correctly.
void disable();
inline bool enabled() { return detail::enabled(); }
/// Drops every recorded edge and witness (tests; classes stay interned).
void reset();

/// Registers the atexit gate: a dirty report at process exit prints to
/// stderr and terminates with exit code 86. Idempotent.
void install_exit_check();

/// One potential-deadlock witness: either a cycle in the class-level
/// acquisition-order graph or an illegal same-class nesting.
struct Witness {
    std::string message;              // human-readable, includes the chain
    std::vector<std::string> chain;   // class names along the cycle / pair
};

struct Report {
    std::vector<std::string> classes;                       // interned names
    std::vector<std::pair<std::string, std::string>> edges; // observed orders
    std::vector<Witness> witnesses;

    bool clean() const { return witnesses.empty(); }
    std::string to_string() const;
};

/// Snapshot of the global acquisition-order graph and its violations.
Report report();

/// Instrumented std::mutex. Satisfies Lockable — use with std::lock_guard,
/// std::unique_lock and std::condition_variable_any (the plain
/// std::condition_variable accepts only std::mutex). The class is interned
/// lazily on first instrumented acquisition, so constructing wrappers is
/// free while lockdep is off.
class Mutex {
public:
    explicit Mutex(const char* name, Nesting nesting = Nesting::Never,
                   std::uint32_t subrank = 0)
        : name_(name), nesting_(nesting), subrank_(subrank) {}

    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    /// Same-class rank for Nesting::Ordered classes (e.g. the shard index).
    /// Call before the mutex is shared between threads.
    void set_subrank(std::uint32_t r) { subrank_ = r; }

    void lock() {
        m_.lock();
        if (detail::enabled()) note_acquire();
    }
    bool try_lock() {
        if (!m_.try_lock()) return false;
        if (detail::enabled()) note_acquire();
        return true;
    }
    void unlock() {
        note_release();
        m_.unlock();
    }

private:
    void note_acquire() { detail::on_acquire(cls(), subrank_); }
    /// Always runs (not gated on enabled()): a lock acquired while lockdep
    /// was on must leave the held stack even if lockdep was disabled in
    /// between. on_release is a no-op for an empty stack.
    void note_release() { detail::on_release(cls()); }
    int cls() {
        int c = cls_.load(std::memory_order_relaxed);
        if (c < 0) {
            c = detail::intern(name_, nesting_);
            cls_.store(c, std::memory_order_relaxed);
        }
        return c;
    }

    std::mutex m_;
    const char* name_;
    Nesting nesting_;
    std::uint32_t subrank_;
    std::atomic<int> cls_{-1};
};

/// Instrumented test-and-test-and-set spinlock (see common/threading.hpp);
/// drop-in for very short critical sections like DepNode::node_lock.
class SpinLock {
public:
    explicit SpinLock(const char* name, Nesting nesting = Nesting::Never,
                      std::uint32_t subrank = 0)
        : name_(name), nesting_(nesting), subrank_(subrank) {}

    SpinLock(const SpinLock&) = delete;
    SpinLock& operator=(const SpinLock&) = delete;

    void lock() {
        while (flag_.test_and_set(std::memory_order_acquire)) {
            while (flag_.test(std::memory_order_relaxed)) {
            }
        }
        if (detail::enabled()) note_acquire();
    }
    bool try_lock() {
        if (flag_.test_and_set(std::memory_order_acquire)) return false;
        if (detail::enabled()) note_acquire();
        return true;
    }
    void unlock() {
        note_release();
        flag_.clear(std::memory_order_release);
    }

private:
    void note_acquire() { detail::on_acquire(cls(), subrank_); }
    void note_release() { detail::on_release(cls()); }
    int cls() {
        int c = cls_.load(std::memory_order_relaxed);
        if (c < 0) {
            c = detail::intern(name_, nesting_);
            cls_.store(c, std::memory_order_relaxed);
        }
        return c;
    }

    std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
    const char* name_;
    Nesting nesting_;
    std::uint32_t subrank_;
    std::atomic<int> cls_{-1};
};

}  // namespace dfamr::lockdep
