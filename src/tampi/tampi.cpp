#include "tampi/tampi.hpp"

#include <algorithm>
#include <chrono>
#include <exception>

#include "common/error.hpp"
#include "verify/access_check.hpp"

namespace dfamr::tampi {

namespace {
std::int64_t steady_now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}
}  // namespace

int Tampi::trace_lane() const {
    // Same lane convention as the drivers: main thread -> 0, runtime worker
    // w -> w + 1, so retries attribute to the worker executing the task.
    const int w = runtime_.worker_index_of_calling_thread();
    return w >= 0 ? w + 1 : 0;
}

Tampi::Tampi(tasking::Runtime& runtime) : runtime_(runtime) {
    service_name_ = "tampi-progress@" + std::to_string(reinterpret_cast<std::uintptr_t>(this));
    runtime_.register_polling_service(service_name_, [this] { return poll(); });
}

Tampi::~Tampi() {
    runtime_.unregister_polling_service(service_name_);
    // Error-path teardown can leave bound requests behind (e.g. receives
    // whose sender crashed). Cancel them and release their events so the
    // runtime destructor does not hang waiting for tasks that would never
    // complete; the error that got us here was already reported.
    std::vector<Bound> leftovers;
    {
        std::lock_guard lock(mutex_);
        leftovers = std::move(pending_);
        pending_.clear();
    }
    for (Bound& b : leftovers) {
        if (!b.request.test()) b.request.cancel();
        runtime_.decrease_task_events(b.task, 1);
    }
}

void Tampi::configure_resilience(const resilience::RetryPolicy& policy, amr::Tracer* tracer) {
    std::lock_guard lock(mutex_);
    hardened_ = true;
    policy_ = policy;
    tracer_ = tracer;
}

void Tampi::set_abort_probe(std::function<bool()> probe) {
    abort_probe_ = std::move(probe);
    // Release-publish: a worker polling concurrently either misses the
    // probe this round or sees the fully constructed function.
    has_abort_probe_.store(true, std::memory_order_release);
}

void Tampi::bind_current_task(mpi::Request req, int rank, int peer, int tag, const char* op) {
    DFAMR_REQUIRE(req.valid(), "TAMPI iwait: invalid request");
    // Fast path: already complete — no event, no tracking.
    if (req.test()) return;
    tasking::Task* task = runtime_.increase_current_task_events(1);
    std::int64_t deadline = 0;
    {
        std::lock_guard lock(mutex_);
        if (hardened_ && policy_.timeout_ns > 0) deadline = steady_now_ns() + policy_.timeout_ns;
        pending_.push_back(Bound{std::move(req), task, deadline, rank, peer, tag, op});
    }
}

void Tampi::iwait(mpi::Request req) {
    bind_current_task(std::move(req), mpi::kUndefined, mpi::kUndefined, mpi::kUndefined, "iwait");
}

void Tampi::iwaitall(std::span<mpi::Request> reqs) {
    for (mpi::Request& r : reqs) {
        if (r.valid()) iwait(r);
    }
}

void Tampi::isend(mpi::Communicator& comm, const void* buf, std::size_t bytes, int dest, int tag) {
    // The send buffer is an input of the calling task: it must be declared.
    DFAMR_CHECK_READ(buf, bytes);
    mpi::Request req = hardened_
                           ? resilience::isend_with_retry(comm, buf, bytes, dest, tag, policy_,
                                                          tracer_, trace_lane())
                           : comm.isend(buf, bytes, dest, tag);
    bind_current_task(std::move(req), comm.rank(), dest, tag, "isend");
}

void Tampi::irecv(mpi::Communicator& comm, void* buf, std::size_t bytes, int source, int tag) {
    // The receive buffer is written asynchronously on the task's behalf —
    // an undeclared buffer races with whoever else touches it.
    DFAMR_CHECK_WRITE(buf, bytes);
    bind_current_task(comm.irecv(buf, bytes, source, tag), comm.rank(), source, tag, "irecv");
}

void Tampi::send(mpi::Communicator& comm, const void* buf, std::size_t bytes, int dest, int tag) {
    DFAMR_CHECK_READ(buf, bytes);
    mpi::Request req = hardened_
                           ? resilience::isend_with_retry(comm, buf, bytes, dest, tag, policy_,
                                                          tracer_, trace_lane())
                           : comm.isend(buf, bytes, dest, tag);
    help_with_deadline(req, "send", comm.rank(), dest, tag);
}

void Tampi::recv(mpi::Communicator& comm, void* buf, std::size_t bytes, int source, int tag,
                 mpi::Status* status) {
    DFAMR_CHECK_WRITE(buf, bytes);
    mpi::Request req = comm.irecv(buf, bytes, source, tag);
    help_with_deadline(req, "recv", comm.rank(), source, tag);
    if (status != nullptr) req.test(status);
}

void Tampi::help_with_deadline(mpi::Request& req, const char* op, int rank, int peer, int tag) {
    // A world abort (a sibling rank crashed) or a rank-local task error
    // ends the wait immediately: the transfer can never be relied on, so
    // riding out the full policy deadline would stall teardown by
    // comm_timeout per blocking call.
    const auto aborted = [this] {
        return probe_world_aborted() || runtime_.has_pending_error();
    };
    if (!hardened_ || policy_.timeout_ns <= 0) {
        runtime_.help_until([&req, &aborted] { return req.test() || aborted(); });
    } else {
        const std::int64_t deadline = steady_now_ns() + policy_.timeout_ns;
        runtime_.help_until([&req, &aborted, deadline] {
            return req.test() || aborted() || steady_now_ns() >= deadline;
        });
    }
    if (req.test()) return;
    if (aborted() && req.cancel()) {
        throw Error("tampi: " + std::string(op) + " abandoned: world aborted "
                    "(another rank failed)");
    }
    if (hardened_ && policy_.timeout_ns > 0 && req.cancel()) {
        throw resilience::CommTimeout(op, rank, peer, tag);
    }
}

std::size_t Tampi::pending() const {
    std::lock_guard lock(mutex_);
    return pending_.size();
}

void Tampi::expire(Bound& b) {
    // cancel() can lose the race against a delivery that completed the
    // request concurrently — then this is a normal (late) completion.
    if (!b.request.cancel() && b.request.test()) {
        runtime_.decrease_task_events(b.task, 1);
        return;
    }
    runtime_.report_external_error(
        std::make_exception_ptr(resilience::CommTimeout(b.op, b.rank, b.peer, b.tag)));
    runtime_.decrease_task_events(b.task, 1);
}

bool Tampi::poll() {
    const std::int64_t now = steady_now_ns();
    // Two ways a transfer becomes unfinishable: the world aborted (a
    // sibling rank crashed), or this rank's own parallel phase already
    // recorded an error — its taskwait WILL rethrow, but only after the
    // event drain, and the peer may never send what these requests wait
    // for (it is stuck on data the failed task would have produced).
    const bool world_aborted = probe_world_aborted();
    const bool doomed = world_aborted || runtime_.has_pending_error();
    std::vector<Bound> completed;
    std::vector<Bound> expired;
    std::vector<Bound> aborted;
    {
        std::lock_guard lock(mutex_);
        auto mid = std::partition(pending_.begin(), pending_.end(),
                                  [](const Bound& b) { return !b.request.test(); });
        completed.assign(std::make_move_iterator(mid), std::make_move_iterator(pending_.end()));
        pending_.erase(mid, pending_.end());
        if (doomed) {
            // Flush everything now so the rank unwinds in one poll interval
            // instead of one completion deadline per request.
            aborted.assign(std::make_move_iterator(pending_.begin()),
                           std::make_move_iterator(pending_.end()));
            pending_.clear();
        } else if (hardened_) {
            bool any = timed_out_;
            for (const Bound& b : pending_) {
                if (b.deadline_ns != 0 && now >= b.deadline_ns) {
                    any = true;
                    break;
                }
            }
            if (any) {
                // One expiry flushes everything still in flight: the step is
                // lost either way, and draining the rest now means teardown
                // takes one timeout, not one per request.
                timed_out_ = true;
                expired.assign(std::make_move_iterator(pending_.begin()),
                               std::make_move_iterator(pending_.end()));
                pending_.clear();
            }
        }
    }
    // Fulfill events outside the tracking lock: decrease_task_events takes
    // the task's node lock and may complete it and wake successors.
    for (const Bound& b : completed) {
        runtime_.decrease_task_events(b.task, 1);
    }
    for (Bound& b : expired) {
        expire(b);
    }
    for (Bound& b : aborted) {
        // cancel() can lose the race against a concurrent delivery — then
        // this is a normal (late) completion, not a casualty of the abort.
        if (!b.request.cancel() && b.request.test()) {
            runtime_.decrease_task_events(b.task, 1);
            continue;
        }
        if (world_aborted) {
            // On a rank-local error the rethrow is already pending — only a
            // remote abort needs an error recorded so taskwait surfaces it.
            runtime_.report_external_error(std::make_exception_ptr(Error(
                std::string("tampi: ") + b.op + " abandoned: world aborted "
                "(another rank failed)")));
        }
        runtime_.decrease_task_events(b.task, 1);
    }
    return true;  // stay registered
}

}  // namespace dfamr::tampi
