#include "tampi/tampi.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "verify/access_check.hpp"

namespace dfamr::tampi {

Tampi::Tampi(tasking::Runtime& runtime) : runtime_(runtime) {
    service_name_ = "tampi-progress@" + std::to_string(reinterpret_cast<std::uintptr_t>(this));
    runtime_.register_polling_service(service_name_, [this] { return poll(); });
}

Tampi::~Tampi() {
    runtime_.unregister_polling_service(service_name_);
    DFAMR_ASSERT(pending_.empty());
}

void Tampi::iwait(mpi::Request req) {
    DFAMR_REQUIRE(req.valid(), "TAMPI iwait: invalid request");
    // Fast path: already complete — no event, no tracking.
    if (req.test()) return;
    tasking::Task* task = runtime_.increase_current_task_events(1);
    std::lock_guard lock(mutex_);
    pending_.push_back(Bound{std::move(req), task});
}

void Tampi::iwaitall(std::span<mpi::Request> reqs) {
    for (mpi::Request& r : reqs) {
        if (r.valid()) iwait(r);
    }
}

void Tampi::isend(mpi::Communicator& comm, const void* buf, std::size_t bytes, int dest, int tag) {
    // The send buffer is an input of the calling task: it must be declared.
    DFAMR_CHECK_READ(buf, bytes);
    iwait(comm.isend(buf, bytes, dest, tag));
}

void Tampi::irecv(mpi::Communicator& comm, void* buf, std::size_t bytes, int source, int tag) {
    // The receive buffer is written asynchronously on the task's behalf —
    // an undeclared buffer races with whoever else touches it.
    DFAMR_CHECK_WRITE(buf, bytes);
    iwait(comm.irecv(buf, bytes, source, tag));
}

void Tampi::send(mpi::Communicator& comm, const void* buf, std::size_t bytes, int dest, int tag) {
    DFAMR_CHECK_READ(buf, bytes);
    mpi::Request req = comm.isend(buf, bytes, dest, tag);
    runtime_.help_until([&req] { return req.test(); });
}

void Tampi::recv(mpi::Communicator& comm, void* buf, std::size_t bytes, int source, int tag,
                 mpi::Status* status) {
    DFAMR_CHECK_WRITE(buf, bytes);
    mpi::Request req = comm.irecv(buf, bytes, source, tag);
    runtime_.help_until([&req] { return req.test(); });
    if (status != nullptr) req.test(status);
}

std::size_t Tampi::pending() const {
    std::lock_guard lock(mutex_);
    return pending_.size();
}

bool Tampi::poll() {
    std::vector<Bound> completed;
    {
        std::lock_guard lock(mutex_);
        auto mid = std::partition(pending_.begin(), pending_.end(),
                                  [](const Bound& b) { return !b.request.test(); });
        completed.assign(std::make_move_iterator(mid), std::make_move_iterator(pending_.end()));
        pending_.erase(mid, pending_.end());
    }
    // Fulfill events outside the tracking lock: decrease_task_events takes
    // the runtime's graph mutex and may wake successors.
    for (const Bound& b : completed) {
        runtime_.decrease_task_events(b.task, 1);
    }
    return true;  // stay registered
}

}  // namespace dfamr::tampi
