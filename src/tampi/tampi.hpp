// Task-Aware MPI (TAMPI) — integration of mpisim with the tasking runtime.
//
// Mirrors the real library's contract (Sala et al., ParCo 2019):
//  * TAMPI::iwait / iwaitall bind the completion of the calling task to the
//    completion of the given MPI requests. They are non-blocking and
//    asynchronous: the task body may return before the transfer finished,
//    and the task releases its dependencies only once BOTH the body has
//    finished AND every bound request completed.
//  * TAMPI::isend / irecv are the convenience wrappers that perform the
//    non-blocking operation and immediately bind the resulting request
//    (the paper's TAMPI_Isend / TAMPI_Irecv).
//  * TAMPI::send / recv are the blocking mode: the calling task pauses
//    until completion while its worker cooperatively executes other tasks.
//
// Progress: a polling service registered with the tasking runtime tests all
// pending requests; on completion it fulfills the owning task's external
// events (the same mechanism real TAMPI uses through the nanos6 polling API).
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/lockdep.hpp"
#include "mpisim/mpi.hpp"
#include "resilience/hardened_comm.hpp"
#include "tasking/runtime.hpp"

namespace dfamr::tampi {

class Tampi {
public:
    /// Attaches the progress engine to a tasking runtime (one per rank in
    /// hybrid executions). Unregisters itself on destruction.
    explicit Tampi(tasking::Runtime& runtime);
    ~Tampi();

    Tampi(const Tampi&) = delete;
    Tampi& operator=(const Tampi&) = delete;

    /// Enables hardened communication: isend retries transient failures
    /// with the policy's backoff, and every bound receive gets a completion
    /// deadline. An expired request is canceled and reported through
    /// Runtime::report_external_error as a resilience::CommTimeout, so the
    /// failure surfaces at the next taskwait instead of hanging the pool.
    void configure_resilience(const resilience::RetryPolicy& policy,
                              amr::Tracer* tracer = nullptr);

    /// Non-blocking: binds `req` to the calling task (TAMPI_Iwait).
    void iwait(mpi::Request req);
    /// Non-blocking: binds all requests to the calling task (TAMPI_Iwaitall).
    void iwaitall(std::span<mpi::Request> reqs);

    /// TAMPI_Isend: non-blocking send bound to the calling task.
    void isend(mpi::Communicator& comm, const void* buf, std::size_t bytes, int dest, int tag);
    /// TAMPI_Irecv: non-blocking receive bound to the calling task. The data
    /// must NOT be consumed inside this task — successors gated by the
    /// task's output dependency on `buf` consume it.
    void irecv(mpi::Communicator& comm, void* buf, std::size_t bytes, int source, int tag);

    /// Blocking mode: pauses the calling task until completion while the
    /// worker executes other ready tasks (task scheduling point).
    void send(mpi::Communicator& comm, const void* buf, std::size_t bytes, int dest, int tag);
    void recv(mpi::Communicator& comm, void* buf, std::size_t bytes, int source, int tag,
              mpi::Status* status = nullptr);

    /// Requests currently tracked by the progress engine (tests/stats).
    std::size_t pending() const;

    /// Installs a probe the progress engine polls for a world abort (a
    /// crashed sibling rank). When it fires, every pending request is
    /// flushed immediately as failed — without it a crash is only noticed
    /// when the per-request completion deadline expires, which turns a
    /// fast-fail into a full comm_timeout stall per rank.
    void set_abort_probe(std::function<bool()> probe);

private:
    bool poll();
    /// Trace lane of the calling thread (main -> 0, runtime worker w -> w+1).
    int trace_lane() const;

    struct Bound {
        mpi::Request request;
        tasking::Task* task = nullptr;
        /// Absolute steady-clock expiry (0 = no deadline / resilience off).
        std::int64_t deadline_ns = 0;
        /// Context for the CommTimeout diagnostic (kUndefined when unknown,
        /// e.g. requests bound through the bare iwait/iwaitall API).
        int rank = mpi::kUndefined;
        int peer = mpi::kUndefined;
        int tag = mpi::kUndefined;
        const char* op = "iwait";
    };

    void bind_current_task(mpi::Request req, int rank, int peer, int tag, const char* op);
    /// Cancels an expired request and reports the timeout to the runtime;
    /// releases the owning task's event so the pool keeps draining.
    void expire(Bound& b);
    /// Blocking-mode completion: help-execute tasks until `req` completes or
    /// the policy deadline passes (then cancel + throw CommTimeout).
    void help_with_deadline(mpi::Request& req, const char* op, int rank, int peer, int tag);

    tasking::Runtime& runtime_;
    mutable lockdep::Mutex mutex_{"tampi.engine"};
    std::vector<Bound> pending_;
    std::string service_name_;

    bool hardened_ = false;
    resilience::RetryPolicy policy_;
    amr::Tracer* tracer_ = nullptr;
    /// Polled by the progress engine and the blocking-mode help loops; a
    /// true return means the world aborted and all waits should fail now.
    /// Published through `has_abort_probe_` (release/acquire): workers may
    /// already be polling when the driver installs the probe.
    std::function<bool()> abort_probe_;
    std::atomic<bool> has_abort_probe_{false};

    bool probe_world_aborted() const {
        return has_abort_probe_.load(std::memory_order_acquire) && abort_probe_();
    }
    /// Set once any request times out: every other pending request is
    /// flushed too, so an aborted step tears down quickly instead of
    /// waiting out one deadline per request.
    bool timed_out_ = false;
};

}  // namespace dfamr::tampi
