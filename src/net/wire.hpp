// Wire format of the TCP transport: length-prefixed frames over one
// full-duplex connection per peer pair.
//
// Every frame starts with a fixed 40-byte little-endian header. Small
// payloads travel eagerly inside a single Eager frame; payloads at or above
// the rendezvous threshold use a three-way handshake — the sender announces
// the transfer with a header-only Rts (request-to-send) frame, the
// receiver's progress thread answers with Cts (clear-to-send), and only then
// does the payload move in a Data frame. The receiver preserves MPI
// non-overtaking order per (source, tag) stream by holding frames that
// arrive between an Rts and its Data (see endpoint.cpp).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>

namespace dfamr::net {

inline constexpr std::uint32_t kWireMagic = 0x4446'4E31;  // "DFN1"

enum class FrameKind : std::uint32_t {
    Hello = 0,      // first frame on a dialed connection; src = dialer's rank
    Eager = 1,      // payload carried inline
    Rts = 2,        // rendezvous announce; aux = payload bytes to follow
    Cts = 3,        // rendezvous grant; seq echoes the Rts
    Data = 4,       // rendezvous payload; seq matches the granted Rts
    Bye = 5,        // orderly shutdown; EOF without Bye means the peer died
    Coalesced = 6,  // batch of eager sub-messages; aux = count (see SubMsgEntry)
};

/// One entry of a Coalesced frame's sub-message table. The payload of a
/// Coalesced frame is `aux` of these (16 bytes each), followed by the
/// sub-payloads in table order, each padded to kSubMsgAlign so a receiver
/// can hand out aligned views straight into the frame (doubles included:
/// kHeaderBytes is itself 8-aligned). Batching n eager frames this way
/// replaces n 40-byte headers with one header plus n 16-byte entries —
/// fewer frames AND fewer bytes on the wire.
struct SubMsgEntry {
    std::int32_t tag = 0;
    std::uint32_t reserved = 0;
    std::uint64_t bytes = 0;  // unpadded sub-payload size
};

inline constexpr std::size_t kSubMsgEntryBytes = sizeof(SubMsgEntry);
static_assert(kSubMsgEntryBytes == 16, "sub-message table layout changed");

inline constexpr std::size_t kSubMsgAlign = 8;

inline constexpr std::size_t padded_sub_bytes(std::size_t bytes) {
    return (bytes + (kSubMsgAlign - 1)) & ~(kSubMsgAlign - 1);
}

inline void encode_sub_entry(const SubMsgEntry& e, std::byte* out) {
    std::memcpy(out, &e, kSubMsgEntryBytes);
}

inline SubMsgEntry decode_sub_entry(std::span<const std::byte> in) {
    SubMsgEntry e;
    std::memcpy(&e, in.data(), kSubMsgEntryBytes);
    return e;
}

struct FrameHeader {
    std::uint32_t magic = kWireMagic;
    FrameKind kind = FrameKind::Eager;
    std::int32_t src = 0;
    std::int32_t tag = 0;
    std::uint32_t seq = 0;          // rendezvous sequence (Rts/Cts/Data)
    std::uint32_t reserved = 0;
    std::uint64_t payload_bytes = 0;  // bytes following this header
    std::uint64_t aux = 0;            // Rts: announced Data payload size
};

inline constexpr std::size_t kHeaderBytes = sizeof(FrameHeader);
static_assert(kHeaderBytes == 40, "wire header layout changed");

inline void encode_header(const FrameHeader& h, std::byte* out) {
    std::memcpy(out, &h, kHeaderBytes);
}

inline FrameHeader decode_header(std::span<const std::byte> in) {
    FrameHeader h;
    std::memcpy(&h, in.data(), kHeaderBytes);
    return h;
}

/// Wire-level counters surfaced through core::RunResult and
/// BENCH_scaling.json. bytes_* count everything on the wire (headers
/// included); frames_* count frames of every kind.
struct NetCounters {
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_received = 0;
    std::uint64_t frames_sent = 0;
    std::uint64_t frames_received = 0;
    std::uint64_t rendezvous = 0;  // Rts handshakes initiated by this side
    std::uint64_t reconnects = 0;  // extra dial attempts during mesh setup
    std::uint64_t coalesced_frames_sent = 0;  // Coalesced frames on the wire
    std::uint64_t coalesced_messages = 0;     // eager messages batched into them
    std::uint64_t copies_elided = 0;  // staging copies removed by zero-copy pack

    NetCounters& operator+=(const NetCounters& o) {
        bytes_sent += o.bytes_sent;
        bytes_received += o.bytes_received;
        frames_sent += o.frames_sent;
        frames_received += o.frames_received;
        rendezvous += o.rendezvous;
        reconnects += o.reconnects;
        coalesced_frames_sent += o.coalesced_frames_sent;
        coalesced_messages += o.coalesced_messages;
        copies_elided += o.copies_elided;
        return *this;
    }
};

/// Per-peer slice of the wire counters (bytes/frames only — the cheap
/// fields a transport can index by peer on its hot paths). Surfaced through
/// core::RunResult as one row per peer rank.
struct PeerStats {
    std::uint64_t bytes_sent = 0;
    std::uint64_t frames_sent = 0;
    std::uint64_t bytes_received = 0;
    std::uint64_t frames_received = 0;

    PeerStats& operator+=(const PeerStats& o) {
        bytes_sent += o.bytes_sent;
        frames_sent += o.frames_sent;
        bytes_received += o.bytes_received;
        frames_received += o.frames_received;
        return *this;
    }
};

}  // namespace dfamr::net
