// Launcher <-> rank rendezvous: dfamr_mpirun runs a tiny TCP exchange
// server; each rank process dials it, registers its own data-listener port,
// and receives the complete rank -> host:port table once every rank has
// checked in. All messages are fixed-size little-endian structs.
//
// The environment variables below are the launcher/rank contract:
//   DFAMR_RANK            this process's rank            (required)
//   DFAMR_NRANKS          world size                     (required)
//   DFAMR_RDV_HOST        exchange server host           (required)
//   DFAMR_RDV_PORT        exchange server port           (required)
//   DFAMR_TRANSPORT       "tcp" | "inproc"               (optional)
//   DFAMR_RNDZ_THRESHOLD  rendezvous threshold, bytes    (optional)
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/socket.hpp"

namespace dfamr::net {

/// Parsed launcher environment; absent when this process was not started by
/// dfamr_mpirun.
struct LaunchEnv {
    int rank = 0;
    int nranks = 1;
    std::string rdv_host;
    std::uint16_t rdv_port = 0;

    /// Reads DFAMR_RANK & friends; returns nullopt unless all four required
    /// variables are present and well-formed.
    static std::optional<LaunchEnv> detect();
};

/// Rank side: dials the exchange server, registers `my_port`, and blocks
/// until the full address table (indexed by rank) comes back.
std::vector<HostPort> exchange_addresses(const LaunchEnv& env, std::uint16_t my_port);

/// Launcher side: accepts one registration per rank on `listener`, then
/// broadcasts the completed table to every rank. Returns the table.
/// Registrations may arrive in any order; duplicate ranks are an error.
std::vector<HostPort> run_exchange_server(const Socket& listener, int nranks);

}  // namespace dfamr::net
