#include "net/endpoint.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/error.hpp"

namespace dfamr::net {

namespace {

std::int64_t now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

// Writes a whole buffer to a non-blocking socket, parking in poll(POLLOUT)
// whenever the kernel buffer is full. Returns false if the peer is gone.
bool write_frame(const Socket& s, std::span<const std::byte> buf) {
    std::size_t sent = 0;
    while (sent < buf.size()) {
        const ssize_t n = ::send(s.fd(), buf.data() + sent, buf.size() - sent, MSG_NOSIGNAL);
        if (n >= 0) {
            sent += static_cast<std::size_t>(n);
            continue;
        }
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            pollfd pfd{s.fd(), POLLOUT, 0};
            ::poll(&pfd, 1, 100);
            continue;
        }
        return false;  // EPIPE / ECONNRESET: peer died
    }
    return true;
}

// Scatter-gather variant of write_frame: sends every iovec in order,
// consuming entries as the kernel accepts bytes. Mutates `iov`.
bool write_vectored(const Socket& s, std::vector<iovec>& iov) {
    std::size_t idx = 0;
    while (idx < iov.size()) {
        msghdr msg{};
        msg.msg_iov = iov.data() + idx;
        msg.msg_iovlen = iov.size() - idx;
        const ssize_t n = ::sendmsg(s.fd(), &msg, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                pollfd pfd{s.fd(), POLLOUT, 0};
                ::poll(&pfd, 1, 100);
                continue;
            }
            return false;
        }
        std::size_t left = static_cast<std::size_t>(n);
        while (idx < iov.size() && left >= iov[idx].iov_len) {
            left -= iov[idx].iov_len;
            ++idx;
        }
        if (idx < iov.size() && left > 0) {
            iov[idx].iov_base = static_cast<char*>(iov[idx].iov_base) + left;
            iov[idx].iov_len -= left;
        }
    }
    return true;
}

// Alignment padding between coalesced sub-payloads (at most 7 bytes).
constexpr std::array<std::byte, kSubMsgAlign> kZeroPad{};

// Coalescing batch caps: enough to amortize headers and syscalls without
// letting one batch hog the writer or build giant iovec arrays.
constexpr std::size_t kMaxCoalesceMsgs = 64;
constexpr std::size_t kMaxCoalesceBytes = 256 * 1024;

}  // namespace

FrameBuf make_frame(const void* payload, std::size_t payload_bytes) {
    auto buf = std::make_shared<std::vector<std::byte>>(kHeaderBytes + payload_bytes);
    if (payload_bytes > 0) {
        std::memcpy(buf->data() + kHeaderBytes, payload, payload_bytes);
    }
    return buf;
}

FrameBuf make_empty_frame(std::size_t payload_bytes) {
    return std::make_shared<std::vector<std::byte>>(kHeaderBytes + payload_bytes);
}

Endpoint::Endpoint(int rank, int nranks, std::size_t rendezvous_threshold, Sink* sink,
                   ProgressTrace trace, bool coalesce)
    : rank_(rank),
      nranks_(nranks),
      rndz_threshold_(rendezvous_threshold),
      sink_(sink),
      trace_(std::move(trace)),
      coalesce_(coalesce) {
    DFAMR_REQUIRE(rank >= 0 && rank < nranks, "net: rank out of range");
    auto [sock, port] = listen_on("0.0.0.0", 0, nranks + 8);
    listener_ = std::move(sock);
    listen_port_ = port;
    conns_.reserve(static_cast<std::size_t>(nranks));
    for (int i = 0; i < nranks; ++i) conns_.push_back(std::make_unique<Connection>());
    peers_.resize(static_cast<std::size_t>(nranks));
    DFAMR_REQUIRE(::pipe(wake_pipe_) == 0, "net: pipe() failed");
    const int flags = ::fcntl(wake_pipe_[0], F_GETFL, 0);
    DFAMR_REQUIRE(flags >= 0 && ::fcntl(wake_pipe_[0], F_SETFL, flags | O_NONBLOCK) == 0,
                  "net: pipe fcntl failed");
}

Endpoint::~Endpoint() {
    if (mesh_started_) {
        // 1. Let in-flight rendezvous transfers finish (bounded: a dead peer
        //    never grants its Cts, and the world is aborting anyway).
        {
            std::unique_lock lk(rndz_m_);
            rndz_cv_.wait_for(lk, std::chrono::seconds(10),
                              [&] { return pending_rndz_.empty(); });
            pending_rndz_.clear();
        }
        // 2. Say goodbye, then drain the write queue and stop the writer.
        for (auto& c : conns_) {
            if (c->peer != rank_ && c->open.load()) {
                enqueue(c->peer, header_only_frame(FrameKind::Bye, 0, 0, 0));
            }
        }
        {
            std::lock_guard lk(write_m_);
            writer_shutdown_ = true;
        }
        write_cv_.notify_all();
        if (writer_.joinable()) writer_.join();
        // 3. Stop the reader.
        reader_stop_.store(true, std::memory_order_release);
        wake_reader();
        if (reader_.joinable()) reader_.join();
    }
    if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
    if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
}

void Endpoint::connect_mesh(const std::vector<HostPort>& table) {
    DFAMR_REQUIRE(!mesh_started_, "net: connect_mesh called twice");
    DFAMR_REQUIRE(static_cast<int>(table.size()) == nranks_, "net: bad address table");
    std::uint64_t retries = 0;
    // Dial every lower rank and identify ourselves with a Hello frame.
    for (int peer = 0; peer < rank_; ++peer) {
        Socket s = dial(table[static_cast<std::size_t>(peer)], /*attempts=*/250, &retries);
        FrameHeader hello;
        hello.kind = FrameKind::Hello;
        hello.src = rank_;
        std::array<std::byte, kHeaderBytes> buf;
        encode_header(hello, buf.data());
        write_all(s, buf);
        if (observer_ != nullptr) observer_->on_frame_sent(peer, hello);
        auto& c = *conns_[static_cast<std::size_t>(peer)];
        c.peer = peer;
        c.sock = std::move(s);
        c.open.store(true);
    }
    // Accept from every higher rank; the Hello tells us who dialed.
    for (int i = rank_ + 1; i < nranks_; ++i) {
        Socket s = accept_one(listener_);
        std::array<std::byte, kHeaderBytes> buf;
        DFAMR_REQUIRE(read_exactly(s, buf), "net: EOF before Hello");
        const FrameHeader hello = decode_header(buf);
        DFAMR_REQUIRE(hello.magic == kWireMagic && hello.kind == FrameKind::Hello,
                      "net: bad Hello frame");
        DFAMR_REQUIRE(hello.src > rank_ && hello.src < nranks_, "net: Hello from bad rank");
        if (observer_ != nullptr) observer_->on_frame_received(hello.src, hello);
        auto& c = *conns_[static_cast<std::size_t>(hello.src)];
        DFAMR_REQUIRE(!c.open.load(), "net: duplicate Hello from rank " + std::to_string(hello.src));
        c.peer = hello.src;
        c.sock = std::move(s);
        c.open.store(true);
    }
    {
        std::lock_guard lk(counters_m_);
        counters_.reconnects += retries;
        // One Hello per dialed connection, each received once on the other side.
        counters_.frames_sent += static_cast<std::uint64_t>(rank_);
        counters_.bytes_sent += static_cast<std::uint64_t>(rank_) * kHeaderBytes;
        counters_.frames_received += static_cast<std::uint64_t>(nranks_ - 1 - rank_);
        counters_.bytes_received += static_cast<std::uint64_t>(nranks_ - 1 - rank_) * kHeaderBytes;
        for (int p = 0; p < rank_; ++p) {
            auto& ps = peers_[static_cast<std::size_t>(p)];
            ps.frames_sent += 1;
            ps.bytes_sent += kHeaderBytes;
        }
        for (int p = rank_ + 1; p < nranks_; ++p) {
            auto& ps = peers_[static_cast<std::size_t>(p)];
            ps.frames_received += 1;
            ps.bytes_received += kHeaderBytes;
        }
    }
    for (auto& c : conns_) {
        if (c->open.load()) {
            c->sock.set_nonblocking(true);
            c->sock.set_nodelay(true);
        }
    }
    mesh_started_ = true;
    reader_ = std::thread([this] { reader_loop(); });
    writer_ = std::thread([this] { writer_loop(); });
}

void Endpoint::send_eager(int dest, int tag, FrameBuf frame) {
    DFAMR_REQUIRE(frame->size() >= kHeaderBytes, "net: frame too small");
    FrameHeader h;
    h.kind = FrameKind::Eager;
    h.src = rank_;
    h.tag = tag;
    h.payload_bytes = frame->size() - kHeaderBytes;
    encode_header(h, frame->data());
    enqueue(dest, std::move(frame));
}

void Endpoint::send_rendezvous(int dest, int tag, FrameBuf frame, std::function<void()> on_sent) {
    DFAMR_REQUIRE(frame->size() >= kHeaderBytes, "net: frame too small");
    const std::uint64_t payload_bytes = frame->size() - kHeaderBytes;
    std::uint32_t seq = 0;
    {
        std::lock_guard lk(rndz_m_);
        seq = next_seq_++;
        FrameHeader data;
        data.kind = FrameKind::Data;
        data.src = rank_;
        data.tag = tag;
        data.seq = seq;
        data.payload_bytes = payload_bytes;
        encode_header(data, frame->data());
        pending_rndz_[{dest, seq}] = QueuedWrite{dest, std::move(frame), std::move(on_sent)};
    }
    {
        std::lock_guard lk(counters_m_);
        ++counters_.rendezvous;
    }
    FrameBuf rts = header_only_frame(FrameKind::Rts, tag, seq, payload_bytes);
    enqueue(dest, std::move(rts));
}

NetCounters Endpoint::counters() const {
    std::lock_guard lk(counters_m_);
    return counters_;
}

std::vector<PeerStats> Endpoint::peer_counters() const {
    std::lock_guard lk(counters_m_);
    return peers_;
}

void Endpoint::enqueue(int dest, FrameBuf frame, std::function<void()> on_written) {
    {
        std::lock_guard lk(write_m_);
        write_q_.push_back(QueuedWrite{dest, std::move(frame), std::move(on_written)});
    }
    write_cv_.notify_one();
}

void Endpoint::drop_pending_for(int peer) {
    std::vector<std::function<void()>> callbacks;
    {
        std::lock_guard lk(rndz_m_);
        for (auto it = pending_rndz_.begin(); it != pending_rndz_.end();) {
            if (it->first.first == peer) {
                if (it->second.on_written) callbacks.push_back(std::move(it->second.on_written));
                it = pending_rndz_.erase(it);
            } else {
                ++it;
            }
        }
    }
    rndz_cv_.notify_all();
    for (auto& cb : callbacks) cb();
}

void Endpoint::wake_reader() {
    const char b = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &b, 1);
}

FrameBuf Endpoint::header_only_frame(FrameKind kind, int tag, std::uint32_t seq,
                                     std::uint64_t aux) {
    auto buf = std::make_shared<std::vector<std::byte>>(kHeaderBytes);
    FrameHeader h;
    h.kind = kind;
    h.src = rank_;
    h.tag = tag;
    h.seq = seq;
    h.aux = aux;
    encode_header(h, buf->data());
    return buf;
}

std::vector<Endpoint::QueuedWrite> Endpoint::pop_write_batch(
    std::unique_lock<lockdep::Mutex>& /*held write_m_*/) {
    std::vector<QueuedWrite> batch;
    batch.push_back(std::move(write_q_.front()));
    write_q_.pop_front();
    if (!coalesce_) return batch;
    const FrameHeader head = decode_header({batch.front().frame->data(), kHeaderBytes});
    if (head.kind != FrameKind::Eager) return batch;
    const int dest = batch.front().dest;
    std::size_t total = batch.front().frame->size() - kHeaderBytes;
    for (auto it = write_q_.begin();
         it != write_q_.end() && batch.size() < kMaxCoalesceMsgs && total < kMaxCoalesceBytes;) {
        if (it->dest != dest) {
            ++it;  // other destinations are independent streams; skip over
            continue;
        }
        const FrameHeader h = decode_header({it->frame->data(), kHeaderBytes});
        // Stop at the first non-Eager frame for this destination: pulling an
        // Eager forward past an Rts or Data would reorder it within its own
        // (source, tag) stream and break non-overtaking.
        if (h.kind != FrameKind::Eager) break;
        total += it->frame->size() - kHeaderBytes;
        batch.push_back(std::move(*it));
        it = write_q_.erase(it);
    }
    return batch;
}

bool Endpoint::write_coalesced(Connection& conn, const std::vector<QueuedWrite>& batch) {
    // Head buffer: Coalesced header followed by the sub-message table; the
    // sub-payloads stay in their original frames and go out via writev.
    const std::size_t count = batch.size();
    std::vector<std::byte> head(kHeaderBytes + count * kSubMsgEntryBytes);
    std::uint64_t payload_total = count * kSubMsgEntryBytes;
    std::vector<iovec> iov;
    iov.reserve(1 + 2 * count);
    iov.push_back(iovec{head.data(), head.size()});
    for (std::size_t i = 0; i < count; ++i) {
        const auto& frame = *batch[i].frame;
        const FrameHeader sub = decode_header({frame.data(), kHeaderBytes});
        SubMsgEntry e;
        e.tag = sub.tag;
        e.bytes = frame.size() - kHeaderBytes;
        encode_sub_entry(e, head.data() + kHeaderBytes + i * kSubMsgEntryBytes);
        const std::size_t padded = padded_sub_bytes(static_cast<std::size_t>(e.bytes));
        payload_total += padded;
        if (e.bytes > 0) {
            iov.push_back(iovec{const_cast<std::byte*>(frame.data()) + kHeaderBytes,
                                static_cast<std::size_t>(e.bytes)});
        }
        if (padded > e.bytes) {
            iov.push_back(
                iovec{const_cast<std::byte*>(kZeroPad.data()), padded - e.bytes});
        }
    }
    FrameHeader h;
    h.kind = FrameKind::Coalesced;
    h.src = rank_;
    h.aux = count;
    h.payload_bytes = payload_total;
    encode_header(h, head.data());
    // Observe BEFORE the bytes hit the socket (see writer_loop).
    if (observer_ != nullptr) observer_->on_frame_sent(conn.peer, h);
    if (!write_vectored(conn.sock, iov)) return false;
    {
        std::lock_guard lk(counters_m_);
        ++counters_.frames_sent;
        counters_.bytes_sent += kHeaderBytes + payload_total;
        ++counters_.coalesced_frames_sent;
        counters_.coalesced_messages += count;
        auto& ps = peers_[static_cast<std::size_t>(conn.peer)];
        ps.frames_sent += 1;
        ps.bytes_sent += kHeaderBytes + payload_total;
    }
    return true;
}

void Endpoint::writer_loop() {
    for (;;) {
        std::vector<QueuedWrite> batch;
        {
            std::unique_lock lk(write_m_);
            write_cv_.wait(lk, [&] { return !write_q_.empty() || writer_shutdown_; });
            if (write_q_.empty()) return;  // shutdown and drained
            batch = pop_write_batch(lk);
        }
        const int dest = batch.front().dest;
        auto& conn = *conns_[static_cast<std::size_t>(dest)];
        bool ok = false;
        if (conn.open.load(std::memory_order_acquire)) {
            if (batch.size() == 1) {
                const auto& w = batch.front();
                // Observe BEFORE the bytes hit the socket: once write_frame
                // returns, the peer may already have read the frame and
                // responded, and the reader thread could deliver that response
                // to the observer first — a post-write hook would then see
                // e.g. Cts arrive before its Rts was recorded as sent.
                if (observer_ != nullptr) {
                    observer_->on_frame_sent(
                        dest, decode_header({w.frame->data(), kHeaderBytes}));
                }
                ok = write_frame(conn.sock, *w.frame);
                if (ok) {
                    std::lock_guard lk(counters_m_);
                    ++counters_.frames_sent;
                    counters_.bytes_sent += w.frame->size();
                    auto& ps = peers_[static_cast<std::size_t>(dest)];
                    ps.frames_sent += 1;
                    ps.bytes_sent += w.frame->size();
                }
            } else {
                ok = write_coalesced(conn, batch);
            }
            if (!ok) {
                conn.open.store(false, std::memory_order_release);
                drop_pending_for(conn.peer);
            }
        }
        // Complete the sends even on failure: peer death aborts the world
        // through peer_gone, and a forever-pending request would hang it.
        for (auto& w : batch) {
            if (w.on_written) w.on_written();
        }
    }
}

void Endpoint::reader_loop() {
    std::vector<pollfd> pfds;
    std::vector<int> peers;  // peer rank per pollfd entry (-1 = wake pipe)
    while (!reader_stop_.load(std::memory_order_acquire)) {
        pfds.clear();
        peers.clear();
        pfds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
        peers.push_back(-1);
        for (auto& c : conns_) {
            if (c->open.load(std::memory_order_acquire) && c->sock.valid()) {
                pfds.push_back(pollfd{c->sock.fd(), POLLIN, 0});
                peers.push_back(c->peer);
            }
        }
        const int nready = ::poll(pfds.data(), pfds.size(), 200);
        if (nready < 0) {
            if (errno == EINTR) continue;
            break;
        }
        if (nready == 0) continue;
        const std::int64_t t0 = trace_ ? now_ns() : 0;
        bool worked = false;
        for (std::size_t i = 0; i < pfds.size(); ++i) {
            if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
            if (peers[i] < 0) {
                char sink[64];
                while (::read(wake_pipe_[0], sink, sizeof sink) > 0) {
                }
                continue;
            }
            worked = true;
            auto& conn = *conns_[static_cast<std::size_t>(peers[i])];
            if (!drain_connection(conn)) {
                const bool clean = conn.saw_bye;
                conn.open.store(false, std::memory_order_release);
                drop_pending_for(conn.peer);
                sink_->peer_gone(conn.peer, clean);
            }
        }
        if (worked && trace_) trace_(t0, now_ns());
    }
}

bool Endpoint::drain_connection(Connection& conn) {
    for (;;) {
        if (conn.saw_bye) return false;
        std::byte* dst = nullptr;
        std::size_t want = 0;
        if (!conn.have_header) {
            dst = conn.header_buf.data() + conn.header_got;
            want = kHeaderBytes - conn.header_got;
        } else {
            dst = conn.payload->data() + conn.payload_got;
            want = conn.payload->size() - conn.payload_got;
        }
        const ssize_t n = ::recv(conn.sock.fd(), dst, want, 0);
        if (n == 0) return false;  // EOF
        if (n < 0) {
            if (errno == EINTR) continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) return true;  // drained
            return false;
        }
        {
            std::lock_guard lk(counters_m_);
            counters_.bytes_received += static_cast<std::uint64_t>(n);
            peers_[static_cast<std::size_t>(conn.peer)].bytes_received +=
                static_cast<std::uint64_t>(n);
        }
        if (!conn.have_header) {
            conn.header_got += static_cast<std::size_t>(n);
            if (conn.header_got < kHeaderBytes) continue;
            conn.header = decode_header(conn.header_buf);
            if (conn.header.magic != kWireMagic) return false;  // corrupt stream
            conn.have_header = true;
            conn.header_got = 0;
            if (conn.header.payload_bytes > 0) {
                conn.payload = std::make_shared<std::vector<std::byte>>(
                    static_cast<std::size_t>(conn.header.payload_bytes));
                conn.payload_got = 0;
                continue;
            }
            conn.payload = nullptr;
        } else {
            conn.payload_got += static_cast<std::size_t>(n);
            if (conn.payload_got < conn.payload->size()) continue;
        }
        // A full frame is assembled.
        {
            std::lock_guard lk(counters_m_);
            ++counters_.frames_received;
            peers_[static_cast<std::size_t>(conn.peer)].frames_received += 1;
        }
        FrameHeader h = conn.header;
        FrameBuf payload = std::move(conn.payload);
        conn.have_header = false;
        conn.payload = nullptr;
        conn.payload_got = 0;
        if (observer_ != nullptr) observer_->on_frame_received(conn.peer, h);
        handle_frame(conn, h, std::move(payload));
    }
}

void Endpoint::handle_frame(Connection& conn, FrameHeader h, FrameBuf payload) {
    switch (h.kind) {
        case FrameKind::Eager: {
            std::span<const std::byte> view =
                payload ? std::span<const std::byte>(*payload) : std::span<const std::byte>{};
            deliver_or_hold(conn, h.tag, std::move(payload), view);
            return;
        }
        case FrameKind::Coalesced: {
            // Unbatch: deliver each sub-message as its own eager message; all
            // views alias the one frame buffer (shared storage, no copies).
            const auto count = static_cast<std::size_t>(h.aux);
            DFAMR_REQUIRE(payload && payload->size() >= count * kSubMsgEntryBytes,
                          "net: coalesced frame shorter than its table");
            const std::span<const std::byte> all(*payload);
            std::size_t off = count * kSubMsgEntryBytes;
            for (std::size_t i = 0; i < count; ++i) {
                const SubMsgEntry e = decode_sub_entry(all.subspan(i * kSubMsgEntryBytes));
                const auto bytes = static_cast<std::size_t>(e.bytes);
                DFAMR_REQUIRE(off + bytes <= all.size(),
                              "net: coalesced sub-payload out of range");
                deliver_or_hold(conn, e.tag, FrameBuf(payload), all.subspan(off, bytes));
                off += padded_sub_bytes(bytes);
            }
            return;
        }
        case FrameKind::Rts: {
            // Reserve the message's slot in the stream now, grant the
            // transfer; the payload fills the slot when Data arrives.
            HeldFrame slot;
            slot.placeholder = true;
            slot.seq = h.seq;
            conn.held[h.tag].push_back(std::move(slot));
            enqueue(conn.peer, header_only_frame(FrameKind::Cts, h.tag, h.seq, 0));
            return;
        }
        case FrameKind::Cts: {
            QueuedWrite w;
            {
                std::lock_guard lk(rndz_m_);
                auto it = pending_rndz_.find({conn.peer, h.seq});
                DFAMR_REQUIRE(it != pending_rndz_.end(), "net: Cts for unknown rendezvous");
                w = std::move(it->second);
                pending_rndz_.erase(it);
            }
            rndz_cv_.notify_all();
            enqueue(w.dest, std::move(w.frame), std::move(w.on_written));
            return;
        }
        case FrameKind::Data: {
            auto it = conn.held.find(h.tag);
            DFAMR_REQUIRE(it != conn.held.end() && !it->second.empty(),
                          "net: Data with no pending rendezvous");
            // Cts grants leave in stream order, so Data frames of one stream
            // arrive in placeholder order; fill the matching slot.
            bool filled = false;
            for (auto& slot : it->second) {
                if (slot.placeholder && slot.seq == h.seq) {
                    slot.placeholder = false;
                    slot.payload = payload ? std::span<const std::byte>(*payload)
                                           : std::span<const std::byte>{};
                    slot.storage = std::move(payload);
                    filled = true;
                    break;
                }
            }
            DFAMR_REQUIRE(filled, "net: Data seq matches no placeholder");
            // Release the in-order prefix that is now complete.
            auto& dq = it->second;
            while (!dq.empty() && !dq.front().placeholder) {
                HeldFrame f = std::move(dq.front());
                dq.pop_front();
                sink_->deliver(conn.peer, h.tag, std::move(f.storage), f.payload);
            }
            if (dq.empty()) conn.held.erase(it);
            return;
        }
        case FrameKind::Bye:
            conn.saw_bye = true;
            return;
        case FrameKind::Hello:
        default:
            DFAMR_REQUIRE(false, "net: unexpected frame kind");
    }
}

void Endpoint::deliver_or_hold(Connection& conn, int tag, FrameBuf storage,
                               std::span<const std::byte> payload) {
    auto it = conn.held.find(tag);
    if (it != conn.held.end() && !it->second.empty()) {
        HeldFrame f;
        f.storage = std::move(storage);
        f.payload = payload;
        it->second.push_back(std::move(f));
        return;
    }
    sink_->deliver(conn.peer, tag, std::move(storage), payload);
}

}  // namespace dfamr::net
