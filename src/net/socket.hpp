// Thin RAII layer over BSD TCP sockets (IPv4, localhost-oriented): listen,
// dial with bounded retry, and exact-size blocking reads/writes. Everything
// above this file speaks frames; everything below is the kernel.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <utility>

namespace dfamr::net {

/// Owning socket fd. Move-only.
class Socket {
public:
    Socket() = default;
    explicit Socket(int fd) : fd_(fd) {}
    ~Socket() { close(); }

    Socket(Socket&& o) noexcept : fd_(std::exchange(o.fd_, -1)) {}
    Socket& operator=(Socket&& o) noexcept {
        if (this != &o) {
            close();
            fd_ = std::exchange(o.fd_, -1);
        }
        return *this;
    }
    Socket(const Socket&) = delete;
    Socket& operator=(const Socket&) = delete;

    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }
    void close();

    void set_nonblocking(bool on);
    void set_nodelay(bool on);

private:
    int fd_ = -1;
};

struct HostPort {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
};

/// Binds and listens on `host` (port 0 = ephemeral); returns the socket and
/// the actual bound port.
std::pair<Socket, std::uint16_t> listen_on(const std::string& host, std::uint16_t port,
                                           int backlog);

/// Connects to host:port, retrying `attempts` times with a short backoff
/// (listeners may still be coming up during rendezvous). `retries_out`, when
/// non-null, is incremented once per extra attempt actually needed.
Socket dial(const HostPort& addr, int attempts, std::uint64_t* retries_out = nullptr);

/// Blocking accept; throws on error.
Socket accept_one(const Socket& listener);

/// Reads exactly `buf.size()` bytes (blocking socket). Returns false on
/// clean EOF at a frame boundary (zero bytes read); throws on mid-read EOF
/// or error.
bool read_exactly(const Socket& s, std::span<std::byte> buf);

/// Writes all bytes (blocking socket, SIGPIPE suppressed); throws on error.
void write_all(const Socket& s, std::span<const std::byte> buf);

}  // namespace dfamr::net
