// dfamr_mpirun: mpirun-style process launcher for the wire transports.
//
//   dfamr_mpirun -n 4 [--transport tcp|shm|auto] [--coalesce]
//                [--rendezvous_threshold BYTES] ./single_sphere --npx 4 ...
//
// Forks/execs one process per rank with the DFAMR_* launch environment set
// (see rendezvous.hpp), runs the address-exchange server, and waits for the
// world. The first rank that exits non-zero (or on a signal) kills the rest
// and its exit status becomes the launcher's; a signal death exits 128+sig.
//
// Transports: tcp (default) gives every rank a loopback TCP endpoint; shm
// gives each directed rank pair a shared-memory ring (the launcher is
// single-host, so every world it starts is co-located). auto resolves to
// shm for that reason. The exchange server runs in every mode — the shm
// transport uses its round trip as the segment-creation barrier.
#include <signal.h>
#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "net/rendezvous.hpp"
#include "net/socket.hpp"

namespace {

void usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s -n NRANKS [--transport tcp|shm|auto] [--coalesce]\n"
                 "       [--rendezvous_threshold BYTES] COMMAND [ARGS...]\n"
                 "Runs COMMAND as NRANKS rank processes over the selected transport\n"
                 "(auto = shm: the launcher always starts a co-located world).\n",
                 argv0);
}

void set_env_int(const char* name, long v) {
    setenv(name, std::to_string(v).c_str(), 1);
}

}  // namespace

int main(int argc, char** argv) {
    int nranks = 0;
    long rndz_threshold = -1;
    std::string transport = "tcp";
    bool coalesce = false;
    int argi = 1;
    while (argi < argc) {
        const std::string a = argv[argi];
        if (a == "-n" || a == "--np") {
            if (argi + 1 >= argc) {
                usage(argv[0]);
                return 2;
            }
            nranks = std::atoi(argv[argi + 1]);
            argi += 2;
        } else if (a == "--rendezvous_threshold" || a == "--rndv_threshold") {
            if (argi + 1 >= argc) {
                usage(argv[0]);
                return 2;
            }
            rndz_threshold = std::atol(argv[argi + 1]);
            argi += 2;
        } else if (a == "--transport") {
            if (argi + 1 >= argc) {
                usage(argv[0]);
                return 2;
            }
            transport = argv[argi + 1];
            argi += 2;
        } else if (a == "--coalesce") {
            coalesce = true;
            ++argi;
        } else if (a == "-h" || a == "--help") {
            usage(argv[0]);
            return 0;
        } else {
            break;  // start of the command
        }
    }
    if (nranks < 1 || argi >= argc) {
        usage(argv[0]);
        return 2;
    }
    if (transport == "auto") transport = "shm";  // the launcher is single-host
    if (transport != "tcp" && transport != "shm") {
        std::fprintf(stderr, "dfamr_mpirun: unknown transport '%s' (expected tcp, shm or auto)\n",
                     transport.c_str());
        return 2;
    }

    auto [listener, rdv_port] = dfamr::net::listen_on("127.0.0.1", 0, nranks + 8);

    // Shm worlds share a namespace distinct per launcher invocation so two
    // concurrent launches on one host never collide on segment names.
    const std::string shm_ns = "w" + std::to_string(static_cast<long>(getpid()));

    std::vector<pid_t> pids(static_cast<std::size_t>(nranks), -1);
    for (int r = 0; r < nranks; ++r) {
        const pid_t pid = fork();
        if (pid < 0) {
            std::perror("dfamr_mpirun: fork");
            for (pid_t p : pids) {
                if (p > 0) kill(p, SIGKILL);
            }
            return 1;
        }
        if (pid == 0) {
            set_env_int("DFAMR_RANK", r);
            set_env_int("DFAMR_NRANKS", nranks);
            setenv("DFAMR_RDV_HOST", "127.0.0.1", 1);
            set_env_int("DFAMR_RDV_PORT", rdv_port);
            setenv("DFAMR_TRANSPORT", transport.c_str(), 1);
            if (transport == "shm") setenv("DFAMR_SHM_NS", shm_ns.c_str(), 1);
            if (coalesce) setenv("DFAMR_COALESCE", "1", 1);
            if (rndz_threshold >= 0) set_env_int("DFAMR_RNDZ_THRESHOLD", rndz_threshold);
            execvp(argv[argi], argv + argi);
            std::fprintf(stderr, "dfamr_mpirun: exec %s: %s\n", argv[argi],
                         std::strerror(errno));
            _exit(127);
        }
        pids[static_cast<std::size_t>(r)] = pid;
    }

    // The exchange server would block forever if a rank dies before
    // registering, so run it off-thread and watch the children here.
    std::thread exchange([&] {
        try {
            dfamr::net::run_exchange_server(listener, nranks);
        } catch (const std::exception& e) {
            // A dying world tears the exchange connections down; the
            // wait loop below reports the real failure.
            std::fprintf(stderr, "dfamr_mpirun: rendezvous: %s\n", e.what());
        }
    });

    int world_status = 0;
    int remaining = nranks;
    bool killed = false;
    while (remaining > 0) {
        int status = 0;
        const pid_t pid = waitpid(-1, &status, 0);
        if (pid < 0) {
            if (errno == EINTR) continue;
            break;
        }
        int rank = -1;
        for (int r = 0; r < nranks; ++r) {
            if (pids[static_cast<std::size_t>(r)] == pid) rank = r;
        }
        if (rank < 0) continue;  // not one of ours
        pids[static_cast<std::size_t>(rank)] = -1;
        --remaining;
        int code = 0;
        if (WIFEXITED(status)) {
            code = WEXITSTATUS(status);
        } else if (WIFSIGNALED(status)) {
            code = 128 + WTERMSIG(status);
            std::fprintf(stderr, "dfamr_mpirun: rank %d killed by signal %d\n", rank,
                         WTERMSIG(status));
        }
        if (code != 0 && world_status == 0) {
            world_status = code;
            std::fprintf(stderr, "dfamr_mpirun: rank %d exited with status %d; killing world\n",
                         rank, code);
        }
        if (world_status != 0 && !killed) {
            killed = true;
            for (pid_t p : pids) {
                if (p > 0) kill(p, SIGTERM);
            }
            // Escalate if anything ignores the SIGTERM.
            std::thread([pids] {
                std::this_thread::sleep_for(std::chrono::seconds(5));
                for (pid_t p : pids) {
                    if (p > 0) kill(p, SIGKILL);
                }
            }).detach();
        }
    }
    // If some rank died before registering, the exchange thread is still
    // parked in accept(); a throwaway self-connection (closed immediately)
    // unblocks it and the mid-registration EOF makes it bail out.
    try {
        dfamr::net::dial(dfamr::net::HostPort{"127.0.0.1", rdv_port}, 1);
    } catch (const std::exception&) {
    }
    exchange.join();
    if (transport == "shm") {
        // Normal teardown unlinks every segment (consumers own the names);
        // sweep up after crashed worlds so /dev/shm never accumulates.
        for (int i = 0; i < nranks; ++i) {
            for (int j = 0; j < nranks; ++j) {
                if (i == j) continue;
                const std::string name = "/dfamr_" + shm_ns + "_" + std::to_string(i) + "to" +
                                         std::to_string(j);
                shm_unlink(name.c_str());
            }
        }
    }
    return world_status;
}
