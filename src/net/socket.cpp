#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/error.hpp"

namespace dfamr::net {

namespace {

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    DFAMR_REQUIRE(inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
                  "net: invalid IPv4 address '" + host + "'");
    return addr;
}

[[noreturn]] void throw_errno(const std::string& what) {
    throw Error("net: " + what + ": " + std::strerror(errno));
}

}  // namespace

void Socket::close() {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void Socket::set_nonblocking(bool on) {
    const int flags = fcntl(fd_, F_GETFL, 0);
    DFAMR_REQUIRE(flags >= 0, "net: fcntl(F_GETFL) failed");
    const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
    DFAMR_REQUIRE(fcntl(fd_, F_SETFL, want) == 0, "net: fcntl(F_SETFL) failed");
}

void Socket::set_nodelay(bool on) {
    const int v = on ? 1 : 0;
    DFAMR_REQUIRE(setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &v, sizeof v) == 0,
                  "net: setsockopt(TCP_NODELAY) failed");
}

std::pair<Socket, std::uint16_t> listen_on(const std::string& host, std::uint16_t port,
                                           int backlog) {
    Socket s(::socket(AF_INET, SOCK_STREAM, 0));
    if (!s.valid()) throw_errno("socket");
    const int one = 1;
    setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr = make_addr(host, port);
    if (::bind(s.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
        throw_errno("bind " + host + ":" + std::to_string(port));
    }
    if (::listen(s.fd(), backlog) != 0) throw_errno("listen");
    socklen_t len = sizeof addr;
    DFAMR_REQUIRE(getsockname(s.fd(), reinterpret_cast<sockaddr*>(&addr), &len) == 0,
                  "net: getsockname failed");
    return {std::move(s), ntohs(addr.sin_port)};
}

Socket dial(const HostPort& addr, int attempts, std::uint64_t* retries_out) {
    const sockaddr_in sa = make_addr(addr.host, addr.port);
    for (int attempt = 1;; ++attempt) {
        Socket s(::socket(AF_INET, SOCK_STREAM, 0));
        if (!s.valid()) throw_errno("socket");
        if (::connect(s.fd(), reinterpret_cast<const sockaddr*>(&sa), sizeof sa) == 0) {
            return s;
        }
        if (attempt >= attempts) {
            throw_errno("connect " + addr.host + ":" + std::to_string(addr.port));
        }
        if (retries_out != nullptr) ++*retries_out;
        std::this_thread::sleep_for(std::chrono::milliseconds(20 * attempt));
    }
}

Socket accept_one(const Socket& listener) {
    for (;;) {
        const int fd = ::accept(listener.fd(), nullptr, nullptr);
        if (fd >= 0) return Socket(fd);
        if (errno == EINTR) continue;
        throw_errno("accept");
    }
}

bool read_exactly(const Socket& s, std::span<std::byte> buf) {
    std::size_t got = 0;
    while (got < buf.size()) {
        const ssize_t n = ::recv(s.fd(), buf.data() + got, buf.size() - got, 0);
        if (n > 0) {
            got += static_cast<std::size_t>(n);
            continue;
        }
        if (n == 0) {
            if (got == 0) return false;  // clean EOF between frames
            throw Error("net: connection closed mid-frame");
        }
        if (errno == EINTR) continue;
        throw_errno("recv");
    }
    return true;
}

void write_all(const Socket& s, std::span<const std::byte> buf) {
    std::size_t sent = 0;
    while (sent < buf.size()) {
        const ssize_t n = ::send(s.fd(), buf.data() + sent, buf.size() - sent, MSG_NOSIGNAL);
        if (n >= 0) {
            sent += static_cast<std::size_t>(n);
            continue;
        }
        if (errno == EINTR) continue;
        throw_errno("send");
    }
}

}  // namespace dfamr::net
