#include "net/shm_transport.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "common/error.hpp"

namespace dfamr::net {

namespace {

std::int64_t now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

// Same batch caps as the TCP writer's coalescing path.
constexpr std::size_t kMaxCoalesceMsgs = 64;
constexpr std::size_t kMaxCoalesceBytes = 256 * 1024;

// How long open_peers waits for a peer's segment. The caller's barrier
// means the segment exists before we look; this only covers scheduling
// skew and slow filesystems.
constexpr auto kOpenDeadline = std::chrono::seconds(20);

// Progress-thread pacing: yield-spin before sleeping on the cv with a short
// timeout (the timeout doubles as the inbound poll period — a peer writing
// into our ring cannot signal our cv). yield() is cheap even on an
// oversubscribed machine — it hands the core straight to a runnable worker
// and comes back with no timer latency — while a timed cv wait parks the
// thread for at least the timer slack on every idle cycle. So the loop
// leans on yield and only falls back to the cv sleep after a long idle
// streak, to avoid burning power on a genuinely quiet transport.
constexpr int kSpinIters = 4000;
constexpr auto kIdleSleep = std::chrono::microseconds(500);
constexpr auto kProbePeriod = std::chrono::milliseconds(50);

}  // namespace

std::uint32_t shm_ring_bytes_from_env() {
    const char* env = std::getenv("DFAMR_SHM_RING_BYTES");
    if (env == nullptr || *env == '\0') return 1 << 20;
    const long long v = std::atoll(env);
    if (v < (1 << 10)) return 1 << 10;
    if (v > (1 << 30)) return 1 << 30;
    return static_cast<std::uint32_t>(v);
}

std::string ShmTransport::segment_name(int from, int to) const {
    return "/dfamr_" + ns_ + "_" + std::to_string(from) + "to" + std::to_string(to);
}

ShmTransport::ShmTransport(const ShmOptions& opts, Sink* sink)
    : rank_(opts.rank),
      nranks_(opts.nranks),
      rndz_threshold_(opts.rendezvous_threshold),
      ring_bytes_(opts.ring_bytes),
      ns_(opts.ns),
      coalesce_(opts.coalesce),
      sink_(sink),
      trace_(opts.trace) {
    DFAMR_REQUIRE(rank_ >= 0 && rank_ < nranks_, "shm: rank out of range");
    DFAMR_REQUIRE(!ns_.empty(), "shm: namespace required");
    peers_.reserve(static_cast<std::size_t>(nranks_));
    for (int i = 0; i < nranks_; ++i) peers_.push_back(std::make_unique<Peer>());
    peer_stats_.resize(static_cast<std::size_t>(nranks_));
    const std::size_t seg_bytes = shm_segment_bytes(ring_bytes_);
    for (int j = 0; j < nranks_; ++j) {
        if (j == rank_) continue;
        const std::string name = segment_name(rank_, j);
        int fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
        if (fd < 0 && errno == EEXIST) {
            // Stale segment from a crashed run that reused our namespace.
            ::shm_unlink(name.c_str());
            fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
        }
        DFAMR_REQUIRE(fd >= 0, "shm: shm_open(create " + name + ") failed");
        const bool sized = ::ftruncate(fd, static_cast<off_t>(seg_bytes)) == 0;
        void* base = sized ? ::mmap(nullptr, seg_bytes, PROT_READ | PROT_WRITE,
                                    MAP_SHARED, fd, 0)
                           : MAP_FAILED;
        ::close(fd);
        if (base == MAP_FAILED) ::shm_unlink(name.c_str());
        DFAMR_REQUIRE(sized && base != MAP_FAILED, "shm: mapping " + name + " failed");
        ShmRing::init(base, ring_bytes_, static_cast<std::int32_t>(::getpid()));
        auto& p = *peers_[static_cast<std::size_t>(j)];
        p.rank = j;
        p.out_map = base;
        p.map_bytes = seg_bytes;
        p.out.attach(base, ring_bytes_);
        p.header_buf.resize(kHeaderBytes);
    }
}

ShmTransport::~ShmTransport() {
    if (started_) {
        // 1. Let in-flight rendezvous transfers finish (bounded: a dead peer
        //    never grants its Cts, and the world is aborting anyway). The
        //    progress thread keeps running through every wait below, so it
        //    still grants Cts to peers and drains their frames — mutual
        //    flush-waits cannot deadlock.
        {
            std::unique_lock lk(rndz_m_);
            rndz_cv_.wait_for(lk, std::chrono::seconds(10),
                              [&] { return pending_rndz_.empty(); });
            pending_rndz_.clear();
        }
        // 2. Say goodbye, then wait (bounded) for the queues to drain into
        //    the rings.
        for (auto& p : peers_) {
            if (p->rank >= 0 && p->rank != rank_ && p->open.load()) {
                enqueue(p->rank, header_only_frame(FrameKind::Bye, 0, 0, 0));
            }
        }
        const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
        for (;;) {
            bool drained = true;
            {
                std::lock_guard lk(out_m_);
                for (auto& p : peers_) {
                    if (!p->pending.empty()) drained = false;
                }
            }
            if (drained || std::chrono::steady_clock::now() >= deadline) break;
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        // 3. Stop the progress thread.
        stop_.store(true, std::memory_order_release);
        out_cv_.notify_all();
        if (progress_.joinable()) progress_.join();
    }
    for (auto& p : peers_) {
        if (p->in_map != nullptr) ::munmap(p->in_map, p->map_bytes);
        if (p->out_map != nullptr) ::munmap(p->out_map, p->map_bytes);
        if (p->rank >= 0 && p->rank != rank_) {
            // Normally the consumer already unlinked this; ENOENT is fine.
            ::shm_unlink(segment_name(rank_, p->rank).c_str());
        }
    }
}

void ShmTransport::open_peers() {
    DFAMR_REQUIRE(!started_, "shm: open_peers called twice");
    for (int j = 0; j < nranks_; ++j) {
        if (j == rank_) continue;
        const std::string name = segment_name(j, rank_);
        const auto deadline = std::chrono::steady_clock::now() + kOpenDeadline;
        int fd = -1;
        for (;;) {
            fd = ::shm_open(name.c_str(), O_RDWR, 0);
            if (fd >= 0) break;
            DFAMR_REQUIRE(std::chrono::steady_clock::now() < deadline,
                          "shm: peer segment " + name + " never appeared");
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        struct stat st{};
        const bool statted = ::fstat(fd, &st) == 0 &&
                             static_cast<std::size_t>(st.st_size) >= sizeof(RingHeader);
        void* base = statted ? ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                                      PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0)
                             : MAP_FAILED;
        ::close(fd);
        DFAMR_REQUIRE(statted && base != MAP_FAILED, "shm: mapping " + name + " failed");
        // The consumer owns the name: once both sides hold mappings the name
        // is no longer needed, and unlinking here makes cleanup automatic
        // even on crash.
        ::shm_unlink(name.c_str());
        auto* hdr = static_cast<RingHeader*>(base);
        DFAMR_REQUIRE(hdr->magic == kRingMagic &&
                          shm_segment_bytes(hdr->capacity) <=
                              static_cast<std::size_t>(st.st_size),
                      "shm: bad ring header in " + name);
        auto& p = *peers_[static_cast<std::size_t>(j)];
        p.in_map = base;
        p.in.attach(base, hdr->capacity);
        p.open.store(true, std::memory_order_release);
        enqueue(j, header_only_frame(FrameKind::Hello, 0, 0, 0));
    }
    started_ = true;
    progress_ = std::thread([this] { progress_loop(); });
}

void ShmTransport::send_eager(int dest, int tag, FrameBuf frame) {
    DFAMR_REQUIRE(frame->size() >= kHeaderBytes, "shm: frame too small");
    FrameHeader h;
    h.kind = FrameKind::Eager;
    h.src = rank_;
    h.tag = tag;
    h.payload_bytes = frame->size() - kHeaderBytes;
    encode_header(h, frame->data());
    enqueue(dest, std::move(frame));
}

void ShmTransport::send_rendezvous(int dest, int tag, FrameBuf frame,
                                   std::function<void()> on_sent) {
    DFAMR_REQUIRE(frame->size() >= kHeaderBytes, "shm: frame too small");
    const std::uint64_t payload_bytes = frame->size() - kHeaderBytes;
    std::uint32_t seq = 0;
    {
        std::lock_guard lk(rndz_m_);
        seq = next_seq_++;
        FrameHeader data;
        data.kind = FrameKind::Data;
        data.src = rank_;
        data.tag = tag;
        data.seq = seq;
        data.payload_bytes = payload_bytes;
        encode_header(data, frame->data());
        QueuedWrite w;
        w.frame = std::move(frame);
        w.on_written = std::move(on_sent);
        pending_rndz_[{dest, seq}] = std::move(w);
    }
    {
        std::lock_guard lk(counters_m_);
        ++counters_.rendezvous;
    }
    enqueue(dest, header_only_frame(FrameKind::Rts, tag, seq, payload_bytes));
}

NetCounters ShmTransport::counters() const {
    std::lock_guard lk(counters_m_);
    return counters_;
}

std::vector<PeerStats> ShmTransport::peer_counters() const {
    std::lock_guard lk(counters_m_);
    return peer_stats_;
}

void ShmTransport::enqueue(int dest, FrameBuf frame, std::function<void()> on_written) {
    DFAMR_REQUIRE(dest >= 0 && dest < nranks_ && dest != rank_, "shm: bad destination");
    Peer& p = *peers_[static_cast<std::size_t>(dest)];
    // Inline fast path: when nothing is queued for this peer, copy the frame
    // into the ring from the calling thread instead of waking the progress
    // thread — that hop costs a context switch per frame on the latency
    // path. Safe against the lock-free front streaming in flush_outbound
    // because that only runs while pending is non-empty and this only runs
    // while it is empty, both decided under out_m_. With coalescing on,
    // Eager frames still queue (queuing is what gives the batcher adjacent
    // frames to merge) but everything else — Rts/Cts/Data/Bye, which the
    // batcher never merges — goes inline; with the queue empty there is no
    // run to split and nothing to overtake.
    const bool mergeable =
        coalesce_ && decode_header({frame->data(), kHeaderBytes}).kind == FrameKind::Eager;
    if (!mergeable) {
        bool wrote_all = false;
        const std::size_t frame_bytes = frame->size();
        {
            std::lock_guard lk(out_m_);
            if (p.pending.empty() && p.open.load(std::memory_order_acquire)) {
                if (observer_ != nullptr) {
                    observer_->on_frame_sent(dest, decode_header({frame->data(), kHeaderBytes}));
                }
                const std::size_t n = p.out.try_write({frame->data(), frame_bytes});
                if (n == frame_bytes) {
                    wrote_all = true;
                } else {
                    // Ring full mid-frame: park the tail for the progress
                    // thread, already marked as observed.
                    QueuedWrite w;
                    w.frame = std::move(frame);
                    w.on_written = std::move(on_written);
                    w.observed = true;
                    w.offset = n;
                    p.pending.push_back(std::move(w));
                }
            }
        }
        if (wrote_all) {
            {
                std::lock_guard lk(counters_m_);
                ++counters_.frames_sent;
                counters_.bytes_sent += frame_bytes;
                auto& ps = peer_stats_[static_cast<std::size_t>(dest)];
                ps.frames_sent += 1;
                ps.bytes_sent += frame_bytes;
            }
            if (on_written) on_written();
            return;
        }
        if (frame == nullptr) {  // parked the tail above
            out_cv_.notify_all();
            return;
        }
    }
    {
        std::lock_guard lk(out_m_);
        QueuedWrite w;
        w.frame = std::move(frame);
        w.on_written = std::move(on_written);
        p.pending.push_back(std::move(w));
    }
    out_cv_.notify_all();
}

void ShmTransport::drop_pending_for(int peer) {
    std::vector<std::function<void()>> callbacks;
    {
        std::lock_guard lk(rndz_m_);
        for (auto it = pending_rndz_.begin(); it != pending_rndz_.end();) {
            if (it->first.first == peer) {
                if (it->second.on_written) callbacks.push_back(std::move(it->second.on_written));
                it = pending_rndz_.erase(it);
            } else {
                ++it;
            }
        }
    }
    rndz_cv_.notify_all();
    for (auto& cb : callbacks) cb();
}

void ShmTransport::report_gone(Peer& p, bool clean) {
    if (p.gone_reported) return;
    p.gone_reported = true;
    p.open.store(false, std::memory_order_release);
    std::vector<std::function<void()>> callbacks;
    {
        std::lock_guard lk(out_m_);
        for (auto& w : p.pending) {
            if (w.on_written) callbacks.push_back(std::move(w.on_written));
        }
        p.pending.clear();
    }
    for (auto& cb : callbacks) cb();
    drop_pending_for(p.rank);
    sink_->peer_gone(p.rank, clean);
}

void ShmTransport::probe_peers() {
    const auto self = static_cast<std::int32_t>(::getpid());
    for (auto& pp : peers_) {
        auto& p = *pp;
        if (p.rank < 0 || p.rank == rank_ || !p.open.load(std::memory_order_acquire)) continue;
        if (!p.in.valid()) continue;
        const std::int32_t pid = p.in.producer_pid();
        if (pid == self || pid <= 0) continue;  // co-threaded loopback world
        if (::kill(pid, 0) != 0 && errno == ESRCH) report_gone(p, /*clean=*/false);
    }
}

FrameBuf ShmTransport::header_only_frame(FrameKind kind, int tag, std::uint32_t seq,
                                         std::uint64_t aux) {
    auto buf = std::make_shared<std::vector<std::byte>>(kHeaderBytes);
    FrameHeader h;
    h.kind = kind;
    h.src = rank_;
    h.tag = tag;
    h.seq = seq;
    h.aux = aux;
    encode_header(h, buf->data());
    return buf;
}

void ShmTransport::maybe_coalesce(Peer& p) {
    // Called under out_m_. Replace the leading run of complete, unstarted
    // Eager frames with one Coalesced frame. Unlike the TCP writer (which
    // scatter-gathers with writev), composing here costs one extra copy of
    // the sub-payloads — accepted: it buys one ring reservation + one header
    // per batch, and the copy is within-socket-buffer-sized.
    if (p.pending.size() < 2 || p.pending.front().offset != 0) return;
    std::size_t run = 0;
    std::size_t total = 0;
    for (const auto& w : p.pending) {
        if (run >= kMaxCoalesceMsgs || total >= kMaxCoalesceBytes) break;
        const FrameHeader h = decode_header({w.frame->data(), kHeaderBytes});
        if (h.kind != FrameKind::Eager) break;
        total += w.frame->size() - kHeaderBytes;
        ++run;
    }
    if (run < 2) return;
    std::size_t payload_total = run * kSubMsgEntryBytes;
    for (std::size_t i = 0; i < run; ++i) {
        payload_total += padded_sub_bytes(p.pending[i].frame->size() - kHeaderBytes);
    }
    auto buf = std::make_shared<std::vector<std::byte>>(kHeaderBytes + payload_total);
    std::size_t off = kHeaderBytes + run * kSubMsgEntryBytes;
    std::vector<std::function<void()>> callbacks;
    for (std::size_t i = 0; i < run; ++i) {
        auto& w = p.pending[i];
        const FrameHeader sub = decode_header({w.frame->data(), kHeaderBytes});
        SubMsgEntry e;
        e.tag = sub.tag;
        e.bytes = w.frame->size() - kHeaderBytes;
        encode_sub_entry(e, buf->data() + kHeaderBytes + i * kSubMsgEntryBytes);
        if (e.bytes > 0) {
            std::memcpy(buf->data() + off, w.frame->data() + kHeaderBytes,
                        static_cast<std::size_t>(e.bytes));
        }
        off += padded_sub_bytes(static_cast<std::size_t>(e.bytes));
        if (w.on_written) callbacks.push_back(std::move(w.on_written));
    }
    FrameHeader h;
    h.kind = FrameKind::Coalesced;
    h.src = rank_;
    h.aux = run;
    h.payload_bytes = payload_total;
    encode_header(h, buf->data());
    p.pending.erase(p.pending.begin(), p.pending.begin() + static_cast<std::ptrdiff_t>(run));
    QueuedWrite composed;
    composed.frame = std::move(buf);
    composed.is_coalesced = true;
    composed.sub_count = run;
    if (!callbacks.empty()) {
        composed.on_written = [cbs = std::move(callbacks)] {
            for (auto& cb : cbs) cb();
        };
    }
    p.pending.push_front(std::move(composed));
}

bool ShmTransport::flush_outbound() {
    bool worked = false;
    for (auto& pp : peers_) {
        auto& p = *pp;
        if (p.rank < 0 || p.rank == rank_) continue;
        for (;;) {
            QueuedWrite* front = nullptr;
            std::vector<std::function<void()>> dropped;
            {
                std::lock_guard lk(out_m_);
                if (!p.pending.empty()) {
                    if (!p.open.load(std::memory_order_acquire)) {
                        // Peer is gone: complete the sends so nothing hangs.
                        for (auto& w : p.pending) {
                            if (w.on_written) dropped.push_back(std::move(w.on_written));
                        }
                        p.pending.clear();
                    } else {
                        if (coalesce_) maybe_coalesce(p);
                        front = &p.pending.front();
                    }
                }
            }
            for (auto& cb : dropped) cb();
            if (front == nullptr) break;
            // Only this thread mutates queue fronts, and deque growth never
            // invalidates references — safe to stream without the lock held.
            if (front->offset == 0 && !front->observed) {
                front->observed = true;
                if (observer_ != nullptr) {
                    observer_->on_frame_sent(
                        p.rank, decode_header({front->frame->data(), kHeaderBytes}));
                }
            }
            const std::span<const std::byte> rest(front->frame->data() + front->offset,
                                                  front->frame->size() - front->offset);
            const std::size_t n = p.out.try_write(rest);
            if (n > 0) worked = true;
            front->offset += n;
            if (front->offset < front->frame->size()) break;  // ring full for now
            {
                std::lock_guard lk(counters_m_);
                ++counters_.frames_sent;
                counters_.bytes_sent += front->frame->size();
                auto& ps = peer_stats_[static_cast<std::size_t>(p.rank)];
                ps.frames_sent += 1;
                ps.bytes_sent += front->frame->size();
                if (front->is_coalesced) {
                    ++counters_.coalesced_frames_sent;
                    counters_.coalesced_messages += front->sub_count;
                }
            }
            std::function<void()> cb;
            {
                std::lock_guard lk(out_m_);
                cb = std::move(p.pending.front().on_written);
                p.pending.pop_front();
            }
            if (cb) cb();
        }
    }
    return worked;
}

bool ShmTransport::drain_inbound() {
    bool worked = false;
    for (auto& pp : peers_) {
        auto& p = *pp;
        if (p.rank < 0 || p.rank == rank_) continue;
        if (!p.open.load(std::memory_order_acquire) || !p.in.valid()) continue;
        for (;;) {
            if (p.saw_bye) {
                report_gone(p, /*clean=*/true);
                break;
            }
            std::byte* dst = nullptr;
            std::size_t want = 0;
            if (!p.have_header) {
                dst = p.header_buf.data() + p.header_got;
                want = kHeaderBytes - p.header_got;
            } else {
                dst = p.payload->data() + p.payload_got;
                want = p.payload->size() - p.payload_got;
            }
            const std::size_t n = p.in.try_read({dst, want});
            if (n == 0) break;  // drained
            worked = true;
            {
                std::lock_guard lk(counters_m_);
                counters_.bytes_received += n;
                peer_stats_[static_cast<std::size_t>(p.rank)].bytes_received += n;
            }
            if (!p.have_header) {
                p.header_got += n;
                if (p.header_got < kHeaderBytes) continue;
                p.header = decode_header({p.header_buf.data(), kHeaderBytes});
                DFAMR_REQUIRE(p.header.magic == kWireMagic, "shm: corrupt ring stream");
                p.have_header = true;
                p.header_got = 0;
                if (p.header.payload_bytes > 0) {
                    p.payload = std::make_shared<std::vector<std::byte>>(
                        static_cast<std::size_t>(p.header.payload_bytes));
                    p.payload_got = 0;
                    continue;
                }
                p.payload = nullptr;
            } else {
                p.payload_got += n;
                if (p.payload_got < p.payload->size()) continue;
            }
            // A full frame is assembled.
            {
                std::lock_guard lk(counters_m_);
                ++counters_.frames_received;
                peer_stats_[static_cast<std::size_t>(p.rank)].frames_received += 1;
            }
            FrameHeader h = p.header;
            FrameBuf payload = std::move(p.payload);
            p.have_header = false;
            p.payload = nullptr;
            p.payload_got = 0;
            if (observer_ != nullptr) observer_->on_frame_received(p.rank, h);
            handle_frame(p, h, std::move(payload));
        }
    }
    return worked;
}

void ShmTransport::handle_frame(Peer& p, FrameHeader h, FrameBuf payload) {
    switch (h.kind) {
        case FrameKind::Hello:
            DFAMR_REQUIRE(!p.hello_seen && h.src == p.rank, "shm: bad Hello");
            p.hello_seen = true;
            return;
        case FrameKind::Eager: {
            std::span<const std::byte> view =
                payload ? std::span<const std::byte>(*payload) : std::span<const std::byte>{};
            deliver_or_hold(p, h.tag, std::move(payload), view);
            return;
        }
        case FrameKind::Coalesced: {
            const auto count = static_cast<std::size_t>(h.aux);
            DFAMR_REQUIRE(payload && payload->size() >= count * kSubMsgEntryBytes,
                          "shm: coalesced frame shorter than its table");
            const std::span<const std::byte> all(*payload);
            std::size_t off = count * kSubMsgEntryBytes;
            for (std::size_t i = 0; i < count; ++i) {
                const SubMsgEntry e = decode_sub_entry(all.subspan(i * kSubMsgEntryBytes));
                const auto bytes = static_cast<std::size_t>(e.bytes);
                DFAMR_REQUIRE(off + bytes <= all.size(),
                              "shm: coalesced sub-payload out of range");
                deliver_or_hold(p, e.tag, FrameBuf(payload), all.subspan(off, bytes));
                off += padded_sub_bytes(bytes);
            }
            return;
        }
        case FrameKind::Rts: {
            HeldFrame slot;
            slot.placeholder = true;
            slot.seq = h.seq;
            p.held[h.tag].push_back(std::move(slot));
            enqueue(p.rank, header_only_frame(FrameKind::Cts, h.tag, h.seq, 0));
            return;
        }
        case FrameKind::Cts: {
            QueuedWrite w;
            {
                std::lock_guard lk(rndz_m_);
                auto it = pending_rndz_.find({p.rank, h.seq});
                DFAMR_REQUIRE(it != pending_rndz_.end(), "shm: Cts for unknown rendezvous");
                w = std::move(it->second);
                pending_rndz_.erase(it);
            }
            rndz_cv_.notify_all();
            enqueue(p.rank, std::move(w.frame), std::move(w.on_written));
            return;
        }
        case FrameKind::Data: {
            auto it = p.held.find(h.tag);
            DFAMR_REQUIRE(it != p.held.end() && !it->second.empty(),
                          "shm: Data with no pending rendezvous");
            bool filled = false;
            for (auto& slot : it->second) {
                if (slot.placeholder && slot.seq == h.seq) {
                    slot.placeholder = false;
                    slot.payload = payload ? std::span<const std::byte>(*payload)
                                           : std::span<const std::byte>{};
                    slot.storage = std::move(payload);
                    filled = true;
                    break;
                }
            }
            DFAMR_REQUIRE(filled, "shm: Data seq matches no placeholder");
            auto& dq = it->second;
            while (!dq.empty() && !dq.front().placeholder) {
                HeldFrame f = std::move(dq.front());
                dq.pop_front();
                sink_->deliver(p.rank, h.tag, std::move(f.storage), f.payload);
            }
            if (dq.empty()) p.held.erase(it);
            return;
        }
        case FrameKind::Bye:
            p.saw_bye = true;
            return;
        default:
            DFAMR_REQUIRE(false, "shm: unexpected frame kind");
    }
}

void ShmTransport::deliver_or_hold(Peer& p, int tag, FrameBuf storage,
                                   std::span<const std::byte> payload) {
    auto it = p.held.find(tag);
    if (it != p.held.end() && !it->second.empty()) {
        HeldFrame f;
        f.storage = std::move(storage);
        f.payload = payload;
        it->second.push_back(std::move(f));
        return;
    }
    sink_->deliver(p.rank, tag, std::move(storage), payload);
}

void ShmTransport::progress_loop() {
    int idle = 0;
    auto last_probe = std::chrono::steady_clock::now();
    while (!stop_.load(std::memory_order_acquire)) {
        const std::int64_t t0 = trace_ ? now_ns() : 0;
        bool worked = flush_outbound();
        worked = drain_inbound() || worked;
        if (worked && trace_) trace_(t0, now_ns());
        const auto now = std::chrono::steady_clock::now();
        if (now - last_probe >= kProbePeriod) {
            last_probe = now;
            probe_peers();
        }
        if (worked) {
            idle = 0;
            continue;
        }
        if (++idle < kSpinIters) {
            std::this_thread::yield();
            continue;
        }
        std::unique_lock lk(out_m_);
        out_cv_.wait_for(lk, kIdleSleep);
    }
}

}  // namespace dfamr::net
