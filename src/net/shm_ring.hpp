// Single-producer single-consumer byte-stream ring over a raw shared-memory
// region — the per-directed-pair channel of the shm transport. The ring is a
// plain byte pipe, not a record queue: frames stream through it exactly like
// a socket (the receiver reassembles them from their wire headers), so a
// frame larger than the ring simply flows through in pieces and capacity
// never constrains message size.
//
// Layout: a RingHeader at offset 0, then `capacity` data bytes. head/tail
// are free-running 64-bit counters (no wraparound handling needed within any
// realistic run); `pos % capacity` locates a byte. The producer advances
// head with memory_order_release after copying bytes in; the consumer reads
// with acquire, so payload bytes are visible before the count that publishes
// them — the classic SPSC publication pattern, lock-free on both sides.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>

namespace dfamr::net {

inline constexpr std::uint32_t kRingMagic = 0x4446'5231;  // "DFR1"

/// Lives at the start of the shared segment. Both sides mmap the same
/// physical pages, so the atomics are genuinely shared; they must be
/// address-free (lock-free) for that to be sound.
struct RingHeader {
    std::uint32_t magic = kRingMagic;
    std::uint32_t capacity = 0;          // data bytes after the header
    alignas(64) std::atomic<std::uint64_t> head{0};  // bytes ever written
    alignas(64) std::atomic<std::uint64_t> tail{0};  // bytes ever consumed
    alignas(64) std::int32_t producer_pid = 0;  // for liveness probing
};

static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
              "shm ring requires address-free 64-bit atomics");

/// View of one ring mapped into this process. Producer side calls
/// try_write; consumer side calls try_read. Neither blocks.
class ShmRing {
public:
    ShmRing() = default;
    ShmRing(void* base, std::uint32_t capacity) { attach(base, capacity); }

    /// Points this view at a mapped segment. `init` formats the header
    /// (creator side, before the peer can possibly see the segment).
    void attach(void* base, std::uint32_t capacity) {
        hdr_ = static_cast<RingHeader*>(base);
        data_ = static_cast<std::byte*>(base) + sizeof(RingHeader);
        capacity_ = capacity;
    }
    static void init(void* base, std::uint32_t capacity, std::int32_t producer_pid) {
        auto* hdr = new (base) RingHeader();
        hdr->capacity = capacity;
        hdr->producer_pid = producer_pid;
    }

    bool valid() const { return hdr_ != nullptr; }
    std::uint32_t capacity() const { return capacity_; }
    std::int32_t producer_pid() const { return hdr_->producer_pid; }

    /// Bytes currently buffered (consumer-accurate; producer sees >= truth).
    std::size_t readable() const {
        return static_cast<std::size_t>(hdr_->head.load(std::memory_order_acquire) -
                                        hdr_->tail.load(std::memory_order_relaxed));
    }

    /// Copies up to src.size() bytes in; returns how many were accepted
    /// (0 when full). Partial writes are normal — the byte stream carries
    /// no record boundaries.
    std::size_t try_write(std::span<const std::byte> src) {
        const std::uint64_t head = hdr_->head.load(std::memory_order_relaxed);
        const std::uint64_t tail = hdr_->tail.load(std::memory_order_acquire);
        const std::size_t free_bytes = capacity_ - static_cast<std::size_t>(head - tail);
        const std::size_t n = src.size() < free_bytes ? src.size() : free_bytes;
        if (n == 0) return 0;
        const std::size_t at = static_cast<std::size_t>(head % capacity_);
        const std::size_t first = n < capacity_ - at ? n : capacity_ - at;
        std::memcpy(data_ + at, src.data(), first);
        if (n > first) std::memcpy(data_, src.data() + first, n - first);
        hdr_->head.store(head + n, std::memory_order_release);
        return n;
    }

    /// Copies up to dst.size() buffered bytes out; returns how many.
    std::size_t try_read(std::span<std::byte> dst) {
        const std::uint64_t tail = hdr_->tail.load(std::memory_order_relaxed);
        const std::uint64_t head = hdr_->head.load(std::memory_order_acquire);
        const std::size_t avail = static_cast<std::size_t>(head - tail);
        const std::size_t n = dst.size() < avail ? dst.size() : avail;
        if (n == 0) return 0;
        const std::size_t at = static_cast<std::size_t>(tail % capacity_);
        const std::size_t first = n < capacity_ - at ? n : capacity_ - at;
        std::memcpy(dst.data(), data_ + at, first);
        if (n > first) std::memcpy(dst.data() + first, data_, n - first);
        hdr_->tail.store(tail + n, std::memory_order_release);
        return n;
    }

private:
    RingHeader* hdr_ = nullptr;
    std::byte* data_ = nullptr;
    std::uint32_t capacity_ = 0;
};

/// Total segment size for a ring of `capacity` data bytes.
inline constexpr std::size_t shm_segment_bytes(std::uint32_t capacity) {
    return sizeof(RingHeader) + capacity;
}

}  // namespace dfamr::net
