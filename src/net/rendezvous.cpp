#include "net/rendezvous.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>

#include <cstdlib>
#include <cstring>

#include "common/error.hpp"

namespace dfamr::net {

namespace {

constexpr std::uint32_t kRdvMagic = 0x44465244;  // "DFRD"

// Registration: rank -> server.
struct RegisterMsg {
    std::uint32_t magic = kRdvMagic;
    std::int32_t rank = 0;
    std::uint32_t port = 0;
};

// Table entry: server -> rank, one per rank in rank order. The host is the
// address the server observed the registration from, so the table works for
// any future multi-host launcher without changing the ranks.
struct TableEntry {
    std::uint32_t ipv4_be = 0;  // network byte order, as in sockaddr_in
    std::uint32_t port = 0;
};

template <typename T>
std::span<std::byte> as_bytes_mut(T& v) {
    return {reinterpret_cast<std::byte*>(&v), sizeof v};
}

template <typename T>
std::span<const std::byte> as_bytes(const T& v) {
    return {reinterpret_cast<const std::byte*>(&v), sizeof v};
}

std::string ip_to_string(std::uint32_t ipv4_be) {
    in_addr a{};
    a.s_addr = ipv4_be;
    char buf[INET_ADDRSTRLEN] = {};
    DFAMR_REQUIRE(inet_ntop(AF_INET, &a, buf, sizeof buf) != nullptr,
                  "net: inet_ntop failed");
    return buf;
}

std::optional<long> env_long(const char* name) {
    const char* v = std::getenv(name);
    if (v == nullptr || *v == '\0') return std::nullopt;
    char* end = nullptr;
    const long x = std::strtol(v, &end, 10);
    if (end == v || *end != '\0') return std::nullopt;
    return x;
}

}  // namespace

std::optional<LaunchEnv> LaunchEnv::detect() {
    const auto rank = env_long("DFAMR_RANK");
    const auto nranks = env_long("DFAMR_NRANKS");
    const auto port = env_long("DFAMR_RDV_PORT");
    const char* host = std::getenv("DFAMR_RDV_HOST");
    if (!rank || !nranks || !port || host == nullptr || *host == '\0') return std::nullopt;
    if (*rank < 0 || *nranks < 1 || *rank >= *nranks || *port < 1 || *port > 65535) {
        return std::nullopt;
    }
    LaunchEnv env;
    env.rank = static_cast<int>(*rank);
    env.nranks = static_cast<int>(*nranks);
    env.rdv_host = host;
    env.rdv_port = static_cast<std::uint16_t>(*port);
    return env;
}

std::vector<HostPort> exchange_addresses(const LaunchEnv& env, std::uint16_t my_port) {
    Socket s = dial(HostPort{env.rdv_host, env.rdv_port}, /*attempts=*/250);
    RegisterMsg reg;
    reg.rank = env.rank;
    reg.port = my_port;
    write_all(s, as_bytes(reg));
    std::vector<HostPort> table(static_cast<std::size_t>(env.nranks));
    for (auto& hp : table) {
        TableEntry e;
        DFAMR_REQUIRE(read_exactly(s, as_bytes_mut(e)),
                      "net: rendezvous server closed before sending the table");
        hp.host = ip_to_string(e.ipv4_be);
        hp.port = static_cast<std::uint16_t>(e.port);
    }
    return table;
}

std::vector<HostPort> run_exchange_server(const Socket& listener, int nranks) {
    std::vector<Socket> socks;
    std::vector<int> sock_rank;
    std::vector<TableEntry> table(static_cast<std::size_t>(nranks));
    std::vector<bool> seen(static_cast<std::size_t>(nranks), false);
    for (int i = 0; i < nranks; ++i) {
        Socket s = accept_one(listener);
        RegisterMsg reg;
        DFAMR_REQUIRE(read_exactly(s, as_bytes_mut(reg)), "net: EOF before registration");
        DFAMR_REQUIRE(reg.magic == kRdvMagic, "net: bad registration magic");
        DFAMR_REQUIRE(reg.rank >= 0 && reg.rank < nranks, "net: registration from bad rank");
        DFAMR_REQUIRE(!seen[static_cast<std::size_t>(reg.rank)],
                      "net: duplicate registration from rank " + std::to_string(reg.rank));
        seen[static_cast<std::size_t>(reg.rank)] = true;
        sockaddr_in peer{};
        socklen_t len = sizeof peer;
        DFAMR_REQUIRE(getpeername(s.fd(), reinterpret_cast<sockaddr*>(&peer), &len) == 0,
                      "net: getpeername failed");
        auto& e = table[static_cast<std::size_t>(reg.rank)];
        e.ipv4_be = peer.sin_addr.s_addr;
        e.port = reg.port;
        socks.push_back(std::move(s));
        sock_rank.push_back(reg.rank);
    }
    for (const auto& s : socks) {
        for (const auto& e : table) write_all(s, as_bytes(e));
    }
    std::vector<HostPort> result(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
        result[static_cast<std::size_t>(r)].host = ip_to_string(table[static_cast<std::size_t>(r)].ipv4_be);
        result[static_cast<std::size_t>(r)].port =
            static_cast<std::uint16_t>(table[static_cast<std::size_t>(r)].port);
    }
    return result;
}

}  // namespace dfamr::net
