// Shared-memory transport for co-located ranks: one SPSC byte-stream ring
// (shm_ring.hpp) per directed pair of ranks, carrying the exact same frame
// protocol as the TCP endpoint — Hello first, Eager / Rts / Cts / Data with
// receiver-side hold-back for non-overtaking order, Bye last. Because the
// frames are identical and mpisim's matching sits above the Transport
// interface, checksums are bit-identical across transports by construction;
// fault injection also lives above the transport, so chaos runs work
// unchanged.
//
// Segment lifecycle (two-phase, race-free):
//   1. The constructor creates and maps every *outbound* segment
//      ("/dfamr_<ns>_<i>to<j>", O_CREAT|O_EXCL).
//   2. The caller crosses a barrier that proves every rank finished step 1 —
//      the launcher's address-exchange round trip, or plain construction
//      order for in-process loopback worlds.
//   3. open_peers() maps every *inbound* segment, unlinks it (the consumer
//      owns the name; both sides hold mappings so the pages survive),
//      queues a Hello per peer, and starts the progress thread.
//
// Threading: send_eager/send_rendezvous may be called from any thread; they
// only append to a per-destination pending queue. The single progress
// thread is the sole producer of every outbound ring and sole consumer of
// every inbound ring — that is what makes the lock-free SPSC rings sound.
// It also probes peer liveness (kill(pid, 0)) so a crashed neighbour turns
// into peer_gone(unclean) just like a TCP connection reset.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/lockdep.hpp"
#include "net/shm_ring.hpp"
#include "net/transport.hpp"
#include "net/wire.hpp"

namespace dfamr::net {

struct ShmOptions {
    int rank = 0;
    int nranks = 1;
    std::size_t rendezvous_threshold = 64 * 1024;
    /// Data bytes per directed ring (env DFAMR_SHM_RING_BYTES overrides).
    std::uint32_t ring_bytes = 1 << 20;
    /// Namespace shared by all ranks of one world; distinct per world so
    /// concurrent worlds on one host never collide.
    std::string ns;
    bool coalesce = false;
    ProgressTrace trace;
};

class ShmTransport final : public Transport {
public:
    /// Phase 1: creates and maps this rank's outbound segments. `sink` must
    /// outlive the transport.
    ShmTransport(const ShmOptions& opts, Sink* sink);
    ~ShmTransport() override;

    ShmTransport(const ShmTransport&) = delete;
    ShmTransport& operator=(const ShmTransport&) = delete;

    /// Phase 3: maps every peer's outbound segment as our inbound ring,
    /// queues Hellos, and starts the progress thread. Every rank must have
    /// been constructed before any rank calls this (see file comment).
    void open_peers();

    int rank() const override { return rank_; }
    std::size_t rendezvous_threshold() const override { return rndz_threshold_; }

    void send_eager(int dest, int tag, FrameBuf frame) override;
    void send_rendezvous(int dest, int tag, FrameBuf frame,
                         std::function<void()> on_sent) override;

    NetCounters counters() const override;
    std::vector<PeerStats> peer_counters() const override;

    /// Must be called before open_peers; the observer must outlive the
    /// transport.
    void set_wire_observer(WireObserver* obs) override { observer_ = obs; }

private:
    struct QueuedWrite {
        FrameBuf frame;
        std::function<void()> on_written;
        bool observed = false;     // on_frame_sent already fired
        std::size_t offset = 0;    // bytes of the frame already in the ring
        // Coalesced-frame bookkeeping for the counters.
        bool is_coalesced = false;
        std::uint64_t sub_count = 0;
    };

    /// Receiver-side hold-back entry; same semantics as Endpoint::HeldFrame.
    struct HeldFrame {
        bool placeholder = false;
        std::uint32_t seq = 0;
        FrameBuf storage;
        std::span<const std::byte> payload;
    };

    struct Peer {
        int rank = -1;
        // Outbound: segment we created; inbound: peer's segment we opened.
        void* out_map = nullptr;
        void* in_map = nullptr;
        std::size_t map_bytes = 0;
        ShmRing out;
        ShmRing in;
        std::atomic<bool> open{false};
        bool hello_seen = false;  // progress-thread only
        bool saw_bye = false;     // progress-thread only
        bool gone_reported = false;
        // Inbound reassembly state (progress-thread only).
        std::vector<std::byte> header_buf;
        std::size_t header_got = 0;
        bool have_header = false;
        FrameHeader header;
        FrameBuf payload;
        std::size_t payload_got = 0;
        // Non-overtaking hold-back, keyed by tag.
        std::map<int, std::deque<HeldFrame>> held;
        // Outbound frames not yet fully in the ring (front may be partial).
        std::deque<QueuedWrite> pending;  // guarded by out_m_
    };

    void progress_loop();
    /// Streams pending outbound frames into the rings; true if bytes moved.
    bool flush_outbound();
    /// Drains inbound rings and dispatches completed frames; true if bytes
    /// moved.
    bool drain_inbound();
    /// Replaces a run of queued Eager frames with one Coalesced frame.
    void maybe_coalesce(Peer& p);
    void handle_frame(Peer& p, FrameHeader h, FrameBuf payload);
    void deliver_or_hold(Peer& p, int tag, FrameBuf storage,
                         std::span<const std::byte> payload);
    void enqueue(int dest, FrameBuf frame, std::function<void()> on_written = nullptr);
    void drop_pending_for(int peer);
    void report_gone(Peer& p, bool clean);
    void probe_peers();
    FrameBuf header_only_frame(FrameKind kind, int tag, std::uint32_t seq, std::uint64_t aux);
    std::string segment_name(int from, int to) const;

    const int rank_;
    const int nranks_;
    const std::size_t rndz_threshold_;
    const std::uint32_t ring_bytes_;
    const std::string ns_;
    const bool coalesce_;
    Sink* const sink_;
    const ProgressTrace trace_;

    std::vector<std::unique_ptr<Peer>> peers_;  // by rank (self slot unused)

    lockdep::Mutex out_m_{"shm.out"};
    std::condition_variable_any out_cv_;

    // Sender-side rendezvous transfers awaiting their Cts.
    lockdep::Mutex rndz_m_{"shm.rndz"};
    std::condition_variable_any rndz_cv_;
    std::uint32_t next_seq_ = 1;
    std::map<std::pair<int, std::uint32_t>, QueuedWrite> pending_rndz_;

    std::thread progress_;
    std::atomic<bool> stop_{false};
    bool started_ = false;

    mutable lockdep::Mutex counters_m_{"shm.counters"};
    NetCounters counters_;
    std::vector<PeerStats> peer_stats_;
    WireObserver* observer_ = nullptr;
};

/// Ring size from the environment (DFAMR_SHM_RING_BYTES) or the default.
std::uint32_t shm_ring_bytes_from_env();

}  // namespace dfamr::net
