// The transport abstraction shared by every wire backend (TCP endpoint,
// shared-memory rings): eager and rendezvous sends into a peer mesh, a Sink
// that receives complete messages, and uniform wire counters. mpisim talks
// to this interface only, so the matching/mailbox machinery is identical
// across backends — that is what makes checksums bit-identical across
// transports by construction.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "net/wire.hpp"

namespace dfamr::net {

/// A frame's backing storage: header (kHeaderBytes) followed by payload.
/// Shared so the mailbox can keep a view of the payload without copying.
using FrameBuf = std::shared_ptr<std::vector<std::byte>>;

/// Allocates a frame with room for `payload_bytes` and copies the payload
/// in after the (still unwritten) header. This is the single payload copy
/// of the eager send path.
FrameBuf make_frame(const void* payload, std::size_t payload_bytes);

/// Allocates an empty frame with room for `payload_bytes` after the header,
/// without copying anything in — the zero-copy pack path writes the payload
/// directly into the returned buffer.
FrameBuf make_empty_frame(std::size_t payload_bytes);

/// Where received messages go. Implemented by mpisim (delivery into the
/// destination mailbox) and by tests (capture).
class Sink {
public:
    virtual ~Sink() = default;
    /// A complete user message arrived (eager payload or rendezvous data).
    /// `storage` owns the bytes `payload` points into.
    virtual void deliver(int src, int tag, FrameBuf storage,
                         std::span<const std::byte> payload) = 0;
    /// The connection to `peer` ended: `clean` when a Bye frame preceded
    /// EOF, false when the peer vanished (crash / kill).
    virtual void peer_gone(int peer, bool clean) = 0;
};

/// Called by a transport's progress thread around each batch of protocol
/// work, so progress-thread time shows up in the execution traces
/// (amr::PhaseKind::NetProgress); null disables the accounting.
using ProgressTrace = std::function<void(std::int64_t t0_ns, std::int64_t t1_ns)>;

/// Observer of every frame a transport puts on or takes off the wire —
/// the hook the protocol-table verifier (verify/mc/protocol.hpp) attaches
/// under DFAMR_VERIFY to validate live traffic against the Rts/Cts state
/// machine. on_frame_sent fires before the frame becomes visible to the
/// peer (and once per Hello during mesh setup); on_frame_received fires on
/// every reassembled frame, before protocol handling. Implementations must
/// be thread-safe. Null disables the accounting: one pointer check per
/// frame (the same zero-cost pattern as tasking::VerifyHook).
class WireObserver {
public:
    virtual ~WireObserver() = default;
    virtual void on_frame_sent(int dest, const FrameHeader& h) = 0;
    virtual void on_frame_received(int src, const FrameHeader& h) = 0;
};

/// Abstract wire backend for one rank. All methods may be called from any
/// thread once the mesh is up; sends never block on the peer.
class Transport {
public:
    virtual ~Transport() = default;

    virtual int rank() const = 0;
    virtual std::size_t rendezvous_threshold() const = 0;

    /// Queues `frame` (payload already in place) for eager transfer. The
    /// payload is considered delivered to the transport on return.
    virtual void send_eager(int dest, int tag, FrameBuf frame) = 0;

    /// Starts a rendezvous transfer: posts the Rts now, sends the payload
    /// when the peer grants it. `on_sent` fires (from a transport thread)
    /// once the Data frame is handed off; it may be null.
    virtual void send_rendezvous(int dest, int tag, FrameBuf frame,
                                 std::function<void()> on_sent) = 0;

    /// Snapshot of the wire counters.
    virtual NetCounters counters() const = 0;
    /// Per-peer bytes/frames, indexed by peer rank (self row stays zero).
    virtual std::vector<PeerStats> peer_counters() const = 0;

    /// Attaches a wire observer (nullptr detaches). Must be called before
    /// the mesh starts; the observer must outlive the transport.
    virtual void set_wire_observer(WireObserver* obs) = 0;
};

}  // namespace dfamr::net
