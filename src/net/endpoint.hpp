// One rank's TCP transport endpoint: a full-duplex connection to every peer,
// a writer thread draining an ordered frame queue, and a reader (progress)
// thread that reassembles incoming frames and feeds them to a Sink — the
// hook mpisim implements with its matching/mailbox machinery.
//
// Transfer policy: payloads below the rendezvous threshold travel eagerly in
// one frame. At or above it, the sender posts a header-only Rts and keeps
// the payload; the receiver's progress thread grants a Cts, and the payload
// follows in a Data frame. Because later frames of the same (source, tag)
// stream can overtake the Data on the wire, the receiver parks them behind
// the pending rendezvous and releases them in order once the Data lands —
// MPI non-overtaking order holds across both transfer modes.
//
// Coalescing (opt-in): when enabled, the writer thread batches consecutive
// same-destination Eager frames from its queue into one Coalesced frame
// with a sub-message table (wire.hpp::SubMsgEntry) — one header and one
// syscall instead of n. The batch stops at the first non-Eager frame for
// that destination, so an Eager never moves past an Rts or Data of its own
// stream and non-overtaking order is preserved frame-for-frame.
//
// Threading: send_eager/send_rendezvous may be called from any thread. The
// reader thread never blocks on a partially received frame (non-blocking
// sockets, per-connection reassembly state), so every endpoint always
// drains its peers; that is what makes the writer threads' blocking sends
// deadlock-free even when two ranks exchange large payloads simultaneously.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "common/lockdep.hpp"
#include "net/socket.hpp"
#include "net/transport.hpp"
#include "net/wire.hpp"

namespace dfamr::net {

class Endpoint final : public Transport {
public:
    /// Creates the endpoint and binds its data listener (ephemeral port).
    /// `sink` must outlive the endpoint. With `coalesce`, the writer batches
    /// queued same-destination eager frames into Coalesced frames.
    Endpoint(int rank, int nranks, std::size_t rendezvous_threshold, Sink* sink,
             ProgressTrace trace = nullptr, bool coalesce = false);
    ~Endpoint() override;

    Endpoint(const Endpoint&) = delete;
    Endpoint& operator=(const Endpoint&) = delete;

    int rank() const override { return rank_; }
    std::uint16_t listen_port() const { return listen_port_; }
    std::size_t rendezvous_threshold() const override { return rndz_threshold_; }

    /// Establishes the peer mesh from the rank -> address table (this rank
    /// dials every lower rank, accepts from every higher one) and starts the
    /// reader and writer threads. Must be called exactly once.
    void connect_mesh(const std::vector<HostPort>& table);

    /// Queues `frame` (payload already in place) for eager transfer. The
    /// payload is considered delivered to the transport on return.
    void send_eager(int dest, int tag, FrameBuf frame) override;

    /// Starts a rendezvous transfer: posts the Rts now, sends the payload
    /// when the peer grants it. `on_sent` fires (from the writer thread)
    /// once the Data frame is handed to the kernel; it may be null.
    void send_rendezvous(int dest, int tag, FrameBuf frame,
                         std::function<void()> on_sent) override;

    /// Snapshot of the wire counters.
    NetCounters counters() const override;
    /// Per-peer bytes/frames, indexed by peer rank.
    std::vector<PeerStats> peer_counters() const override;

    /// Attaches a wire observer (nullptr detaches). Must be called before
    /// connect_mesh; the observer must outlive the endpoint.
    void set_wire_observer(WireObserver* obs) override { observer_ = obs; }

private:
    struct QueuedWrite {
        int dest = 0;
        FrameBuf frame;
        std::function<void()> on_written;
    };

    /// Receiver-side per-(source, tag) hold-back entry: either a message
    /// ready to deliver, or the placeholder of a granted rendezvous whose
    /// Data frame is still in flight (placeholder = true).
    struct HeldFrame {
        bool placeholder = false;
        std::uint32_t seq = 0;
        FrameBuf storage;
        std::span<const std::byte> payload;
    };

    struct Connection {
        int peer = -1;
        Socket sock;
        // Cleared by the reader on EOF / by the writer on send failure; the
        // socket itself stays open until destruction so the fd can't be
        // reused under the other thread.
        std::atomic<bool> open{false};
        bool saw_bye = false;  // reader-thread only
        // Reader reassembly state.
        std::array<std::byte, kHeaderBytes> header_buf;
        std::size_t header_got = 0;
        bool have_header = false;
        FrameHeader header;
        FrameBuf payload;
        std::size_t payload_got = 0;
        // Non-overtaking hold-back, keyed by tag (source is the peer).
        std::map<int, std::deque<HeldFrame>> held;
    };

    void reader_loop();
    void writer_loop();
    /// Pops the front write plus — under coalescing — every later Eager for
    /// the same destination up to the first non-Eager frame headed there.
    /// Returns the frames to put on the wire as one unit (size 1 when not
    /// coalescing or nothing merged).
    std::vector<QueuedWrite> pop_write_batch(std::unique_lock<lockdep::Mutex>& lk);
    /// Sends a batch of eager frames as one Coalesced frame. Returns false
    /// when the connection died mid-write.
    bool write_coalesced(Connection& conn, const std::vector<QueuedWrite>& batch);
    /// Reads whatever is available on `conn` without blocking; dispatches
    /// every completed frame. Returns false when the connection ended.
    bool drain_connection(Connection& conn);
    void handle_frame(Connection& conn, FrameHeader h, FrameBuf payload);
    void deliver_or_hold(Connection& conn, int tag, FrameBuf storage,
                         std::span<const std::byte> payload);
    void enqueue(int dest, FrameBuf frame, std::function<void()> on_written = nullptr);
    /// Completes and forgets rendezvous transfers headed at a dead peer.
    void drop_pending_for(int peer);
    void wake_reader();
    FrameBuf header_only_frame(FrameKind kind, int tag, std::uint32_t seq, std::uint64_t aux);

    const int rank_;
    const int nranks_;
    const std::size_t rndz_threshold_;
    Sink* const sink_;
    const ProgressTrace trace_;
    const bool coalesce_;

    Socket listener_;
    std::uint16_t listen_port_ = 0;
    std::vector<std::unique_ptr<Connection>> conns_;  // by peer rank (self slot unused)
    int wake_pipe_[2] = {-1, -1};

    lockdep::Mutex write_m_{"net.write"};
    std::condition_variable_any write_cv_;
    std::deque<QueuedWrite> write_q_;
    bool writer_shutdown_ = false;

    // Sender-side rendezvous transfers awaiting their Cts.
    lockdep::Mutex rndz_m_{"net.rndz"};
    std::condition_variable_any rndz_cv_;
    std::uint32_t next_seq_ = 1;
    std::map<std::pair<int, std::uint32_t>, QueuedWrite> pending_rndz_;

    std::thread reader_;
    std::thread writer_;
    std::atomic<bool> reader_stop_{false};
    bool mesh_started_ = false;

    mutable lockdep::Mutex counters_m_{"net.counters"};
    NetCounters counters_;
    std::vector<PeerStats> peers_;  // by peer rank (self row stays zero)
    WireObserver* observer_ = nullptr;
};

}  // namespace dfamr::net
