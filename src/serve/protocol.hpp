// Wire protocol of the dfamr-serve daemon (schema "DFS1"): a length-framed
// request/response stream layered on one TCP connection per client. This is
// deliberately NOT the rank transport protocol (net/wire.hpp, "DFN1") — the
// serve plane carries job control and progress, not simulation payloads, so
// it gets its own magic, header and versioning.
//
// Framing: every message is a fixed 24-byte header followed by
// `payload_bytes` of payload encoded with the shared little-endian codec
// (common/bytecodec.hpp). The `job_id` field carries the CLIENT-chosen job
// reference: the client picks a connection-unique id at Submit and every
// later frame about that job (in both directions) repeats it, so responses
// never need a server-id correlation table on the client side.
//
// Client → server: Submit, Cancel, StatsReq, Bye.
// Server → client: Accepted, Rejected, Progress, Done, Failed, Stats.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "amr/config.hpp"
#include "net/socket.hpp"

namespace dfamr::serve {

inline constexpr std::uint32_t kServeMagic = 0x31534644;  // "DFS1" little-endian
/// Refuse absurd frames before allocating (a corrupt header must not OOM
/// the server).
inline constexpr std::uint64_t kMaxPayload = 16ull * 1024 * 1024;

enum class FrameKind : std::uint32_t {
    // client → server
    Submit = 1,
    Cancel = 2,
    StatsReq = 3,
    Bye = 4,
    // server → client
    Accepted = 16,
    Rejected = 17,
    Progress = 18,
    Done = 19,
    Failed = 20,
    Stats = 21,
};

const char* to_string(FrameKind k);

struct FrameHeader {
    std::uint32_t magic = kServeMagic;
    std::uint32_t kind = 0;
    std::uint64_t job_id = 0;  // client-chosen job reference (0 = connection scope)
    std::uint64_t payload_bytes = 0;
};
static_assert(sizeof(FrameHeader) == 24);

/// A simulation job as submitted by a client: scenario + size overrides +
/// scheduling metadata. The numeric fields deliberately mirror the scaled
/// problem sizes of the examples so a job is seconds, not minutes.
struct JobSpec {
    std::string tenant = "default";  // fair-share accounting key
    std::string scenario = "single_sphere";  // single_sphere | four_spheres | gaussian | slotted_cylinder | front
    amr::Variant variant = amr::Variant::TampiOss;
    std::uint64_t seed = 42;
    int ranks = 1;    // in-process ranks (npx; npy = npz = 1)
    int workers = 1;  // cores per rank for the hybrid variants
    int nx = 8;       // cells per block per dimension
    int num_vars = 8;
    int num_tsteps = 4;
    int num_refine = 2;
    /// Tenant scheduling weight (DRR quantum multiplier, >= 1). The last
    /// submitted spec of a tenant wins.
    int weight = 1;
    /// Relative deadline in seconds from submission; 0 = best-effort. Jobs
    /// with deadlines are scheduled earliest-deadline-first ahead of the
    /// fair-share pool and may preempt (suspend) best-effort jobs.
    double deadline_s = 0;

    /// Admission cost: the thread budget a running segment of this job
    /// occupies (rank threads × cores each drives).
    int cost() const { return ranks * (workers > 0 ? workers : 1); }
};

/// The miniAMR configuration a JobSpec denotes. Shared by the server and
/// the load generator so a solo reference run of the same spec is
/// guaranteed to execute the identical problem (checksum comparability).
amr::Config job_config(const JobSpec& spec);

void encode_job_spec(const JobSpec& spec, std::vector<std::byte>& out);
JobSpec decode_job_spec(const std::byte* data, std::size_t size);

/// Terminal result payload of a Done frame.
struct JobDone {
    std::vector<double> checksums;  // full validation history (bit-exact)
    double elapsed_s = 0;           // service time (first dispatch → done)
    std::int32_t suspends = 0;      // suspend/resume cycles the job went through
    std::int32_t retries = 0;       // crash-recovery restarts
};

void encode_job_done(const JobDone& d, std::vector<std::byte>& out);
JobDone decode_job_done(const std::byte* data, std::size_t size);

/// Progress payload: last completed timestep, sent at timestep granularity.
struct JobProgress {
    std::int32_t ts = 0;
    std::int32_t total_ts = 0;
};

void encode_job_progress(const JobProgress& p, std::vector<std::byte>& out);
JobProgress decode_job_progress(const std::byte* data, std::size_t size);

/// Server-side counters exposed over the wire (Stats frame) and mirrored in
/// the bench/soak JSON.
struct ServerStats {
    std::uint64_t submitted = 0;
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t done = 0;
    std::uint64_t failed = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t suspends = 0;
    std::uint64_t resumes = 0;
    std::uint64_t preemptions = 0;
    std::uint64_t crash_retries = 0;
    std::int32_t queued = 0;
    std::int32_t running = 0;
    std::int32_t suspended = 0;
    std::int32_t inflight_cost = 0;
    std::int32_t peak_queue = 0;
    std::int32_t peak_running = 0;
};

void encode_server_stats(const ServerStats& s, std::vector<std::byte>& out);
ServerStats decode_server_stats(const std::byte* data, std::size_t size);

/// Reads one frame. Returns false on clean EOF at a frame boundary; throws
/// on a truncated frame, a bad magic, or an oversized payload.
bool read_frame(const net::Socket& sock, FrameHeader& header,
                std::vector<std::byte>& payload);

/// Writes header + payload as one buffer (single syscall in the common
/// case; callers serialize per-connection writes themselves).
void write_frame(const net::Socket& sock, FrameKind kind, std::uint64_t job_id,
                 const std::vector<std::byte>& payload);

/// String payload helpers (Rejected / Failed reasons).
std::vector<std::byte> encode_string(const std::string& s);
std::string decode_string(const std::byte* data, std::size_t size);

}  // namespace dfamr::serve
