// Client side of the DFS1 protocol: one TCP connection, asynchronous
// submits, and a demux reader thread that routes server frames to per-job
// slots. Safe for concurrent use from many submitter threads — the load
// generator drives hundreds of in-flight jobs over a single Client.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/lockdep.hpp"
#include "net/socket.hpp"
#include "serve/protocol.hpp"

namespace dfamr::serve {

/// Final outcome of one submitted job, as seen over the wire.
struct ClientJobResult {
    bool accepted = false;
    bool done = false;      // Done frame (vs Rejected / Failed / connection loss)
    std::string error;      // rejection reason or failure message
    std::vector<double> checksums;
    double elapsed_s = 0;   // server-side service time
    double latency_s = 0;   // client-side submit → terminal frame
    int suspends = 0;
    int retries = 0;
    int progress_frames = 0;
};

class Client {
public:
    /// Dials the server (bounded retry while it comes up).
    explicit Client(const net::HostPort& addr);
    ~Client();

    Client(const Client&) = delete;
    Client& operator=(const Client&) = delete;

    /// Sends a Submit and returns the connection-unique job reference
    /// immediately; completion is collected with wait().
    std::uint64_t submit(const JobSpec& spec);

    /// Blocks until the job's terminal frame (Rejected/Done/Failed) or
    /// connection loss.
    ClientJobResult wait(std::uint64_t ref);

    void cancel(std::uint64_t ref);

    /// Synchronous server stats round-trip.
    ServerStats stats();

    /// Jobs submitted and not yet terminal (tracked by the reader thread).
    int inflight() const { return inflight_.load(std::memory_order_relaxed); }
    /// High-water mark of inflight().
    int peak_inflight() const { return peak_inflight_.load(std::memory_order_relaxed); }

    /// Sends Bye and closes. Called by the destructor if needed.
    void close();

private:
    struct Slot {
        ClientJobResult result;
        bool terminal = false;
        std::chrono::steady_clock::time_point submitted;
    };

    void reader_loop();
    void send_frame(FrameKind kind, std::uint64_t ref,
                    const std::vector<std::byte>& payload);
    Slot& slot_locked(std::uint64_t ref);

    net::Socket sock_;
    std::thread reader_;

    mutable lockdep::Mutex mutex_{"serve.client"};
    std::condition_variable_any cv_;
    std::map<std::uint64_t, Slot> slots_;
    ServerStats last_stats_;
    std::uint64_t stats_generation_ = 0;   // bumped on every Stats frame
    std::uint64_t next_ref_ = 1;
    bool closed_ = false;

    std::atomic<int> inflight_{0};
    std::atomic<int> peak_inflight_{0};
};

}  // namespace dfamr::serve
