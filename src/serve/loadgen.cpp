#include "serve/loadgen.hpp"

#include <dirent.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <sstream>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "core/variants.hpp"
#include "serve/client.hpp"

namespace dfamr::serve {

namespace {

int count_proc_entries(const char* path) {
    DIR* dir = ::opendir(path);
    if (dir == nullptr) return -1;
    int n = 0;
    while (const dirent* e = ::readdir(dir)) {
        if (e->d_name[0] == '.') continue;
        ++n;
    }
    ::closedir(dir);
    return n;
}

/// The job mix: deterministic function of the job index.
JobSpec make_spec(const LoadGenOptions& opts, int i) {
    JobSpec spec = opts.base;
    spec.tenant = "tenant-" + std::to_string(i % std::max(1, opts.tenants));
    const int d = i % std::max(1, opts.distinct_specs);
    spec.seed = opts.base.seed + static_cast<std::uint64_t>(d);
    // Alternate the two hybrid variants across the distinct specs so the
    // server interleaves different drivers on one pool.
    spec.variant = (d % 2 == 0) ? amr::Variant::TampiOss : amr::Variant::ForkJoin;
    if (opts.deadline_every > 0 && i % opts.deadline_every == opts.deadline_every - 1) {
        spec.deadline_s = opts.deadline_s;
    } else {
        spec.deadline_s = 0;
    }
    return spec;
}

std::string spec_key(const JobSpec& s) {
    std::ostringstream key;
    key << s.scenario << '/' << amr::to_string(s.variant) << "/seed" << s.seed << "/r"
        << s.ranks << "w" << s.workers << "/nx" << s.nx << "v" << s.num_vars << "t"
        << s.num_tsteps << "rf" << s.num_refine;
    return key.str();
}

double percentile(std::vector<double> sorted, double p) {
    if (sorted.empty()) return 0;
    const double idx = p * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(idx);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = idx - static_cast<double>(lo);
    return sorted[lo] * (1 - frac) + sorted[hi] * frac;
}

}  // namespace

int count_open_fds() { return count_proc_entries("/proc/self/fd"); }
int count_threads() { return count_proc_entries("/proc/self/task"); }

std::string LoadGenReport::to_json() const {
    std::ostringstream os;
    os << "{";
    os << "\"submitted\":" << submitted << ",\"accepted\":" << accepted
       << ",\"rejected\":" << rejected << ",\"done\":" << done << ",\"failed\":" << failed
       << ",\"checksum_mismatches\":" << checksum_mismatches
       << ",\"suspended_jobs\":" << suspended_jobs << ",\"retried_jobs\":" << retried_jobs
       << ",\"peak_inflight\":" << peak_inflight << ",\"wall_s\":" << wall_s
       << ",\"jobs_per_s\":" << jobs_per_s << ",\"p50_ms\":" << p50_ms
       << ",\"p99_ms\":" << p99_ms;
    os << ",\"server\":{\"queued_peak\":" << server.peak_queue
       << ",\"running_peak\":" << server.peak_running << ",\"suspends\":" << server.suspends
       << ",\"resumes\":" << server.resumes << ",\"preemptions\":" << server.preemptions
       << ",\"crash_retries\":" << server.crash_retries << ",\"done\":" << server.done
       << ",\"failed\":" << server.failed << ",\"cancelled\":" << server.cancelled
       << ",\"rejected\":" << server.rejected << "}";
    os << "}";
    return os.str();
}

LoadGenReport run_loadgen(const net::HostPort& addr, const LoadGenOptions& opts) {
    LoadGenReport report;

    // Solo references first: one fault-free, uncontrolled local run per
    // distinct spec. job_config() guarantees the identical problem.
    std::map<std::string, std::vector<double>> reference;
    if (opts.verify) {
        for (int d = 0; d < std::max(1, opts.distinct_specs); ++d) {
            const JobSpec spec = make_spec(opts, d);
            const std::string key = spec_key(spec);
            if (reference.count(key) != 0) continue;
            core::RunOptions ropts;
            ropts.ignore_launch_env = true;
            const core::RunResult solo =
                core::run_variant(job_config(spec), spec.variant, nullptr, nullptr, ropts);
            reference.emplace(key, solo.checksums);
        }
    }

    Client client(addr);
    const auto start = std::chrono::steady_clock::now();
    const auto elapsed_s = [&] {
        return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    };

    std::vector<std::pair<std::uint64_t, int>> refs;  // (client ref, job index)
    int i = 0;
    while (i < opts.jobs || elapsed_s() < opts.min_duration_s) {
        refs.emplace_back(client.submit(make_spec(opts, i)), i);
        ++i;
        if (opts.interarrival_ms > 0) {
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(opts.interarrival_ms));
        }
    }
    report.submitted = i;

    std::vector<double> latencies;
    latencies.reserve(refs.size());
    for (const auto& [ref, index] : refs) {
        const ClientJobResult r = client.wait(ref);
        if (!r.accepted) {
            ++report.rejected;
            continue;
        }
        latencies.push_back(r.latency_s * 1e3);
        if (!r.done) {
            ++report.failed;
            continue;
        }
        ++report.done;
        if (r.suspends > 0) ++report.suspended_jobs;
        if (r.retries > 0) ++report.retried_jobs;
        if (opts.verify) {
            const std::string key = spec_key(make_spec(opts, index));
            const auto it = reference.find(key);
            DFAMR_REQUIRE(it != reference.end(), "loadgen: missing solo reference");
            if (r.checksums != it->second) ++report.checksum_mismatches;
        }
    }
    report.wall_s = elapsed_s();
    report.accepted = report.submitted - report.rejected;
    report.peak_inflight = client.peak_inflight();
    report.jobs_per_s = report.wall_s > 0 ? report.done / report.wall_s : 0;
    std::sort(latencies.begin(), latencies.end());
    report.p50_ms = percentile(latencies, 0.50);
    report.p99_ms = percentile(latencies, 0.99);
    report.server = client.stats();
    client.close();
    return report;
}

}  // namespace dfamr::serve
