#include "serve/server.hpp"

#include <sys/socket.h>

#include <map>
#include <mutex>

#include "common/error.hpp"

namespace dfamr::serve {

void Server::Conn::send(FrameKind kind, std::uint64_t job_id,
                        const std::vector<std::byte>& payload) {
    std::lock_guard<lockdep::Mutex> lock(write_mutex);
    if (!open.load(std::memory_order_relaxed)) return;
    try {
        write_frame(sock, kind, job_id, payload);
    } catch (const std::exception&) {
        // Broken pipe mid-stream: stop writing; the reader thread sees the
        // EOF/error and cancels this connection's jobs.
        open.store(false, std::memory_order_relaxed);
    }
}

Server::Server(const ServerOptions& opts) : opts_(opts) {
    manager_ = std::make_unique<JobManager>(opts_.manager);
    auto [sock, port] = net::listen_on(opts_.host, opts_.port, /*backlog=*/64);
    listener_ = std::move(sock);
    port_ = port;
    accept_thread_ = std::thread([this] { accept_loop(); });
}

Server::~Server() { stop(); }

void Server::stop() {
    if (stopping_.exchange(true)) {
        if (accept_thread_.joinable()) accept_thread_.join();
        return;
    }
    // Wake the accept loop, then every blocked reader.
    if (listener_.valid()) ::shutdown(listener_.fd(), SHUT_RDWR);
    if (accept_thread_.joinable()) accept_thread_.join();

    std::vector<std::shared_ptr<Conn>> conns;
    std::vector<std::thread> threads;
    {
        std::lock_guard<lockdep::Mutex> lock(conns_mutex_);
        conns = conns_;
        threads.swap(conn_threads_);
    }
    for (const auto& conn : conns) {
        conn->open.store(false, std::memory_order_relaxed);
        // Under write_mutex: the conn thread closes this socket in its own
        // cleanup, and shutdown on a recycled fd would hit a stranger.
        std::lock_guard<lockdep::Mutex> lock(conn->write_mutex);
        if (conn->sock.valid()) ::shutdown(conn->sock.fd(), SHUT_RDWR);
    }
    for (std::thread& t : threads) t.join();
    {
        std::lock_guard<lockdep::Mutex> lock(conns_mutex_);
        conns_.clear();
    }
    // Destroying the manager cancels whatever is still in flight and
    // drains the pool; events to dead connections are dropped by send().
    final_stats_ = manager_->stats();
    manager_.reset();
    listener_.close();
}

ServerStats Server::stats() const {
    return manager_ != nullptr ? manager_->stats() : final_stats_;
}

void Server::accept_loop() {
    while (!stopping_.load(std::memory_order_relaxed)) {
        net::Socket client;
        try {
            client = net::accept_one(listener_);
        } catch (const std::exception&) {
            if (stopping_.load(std::memory_order_relaxed)) return;
            continue;  // transient accept failure
        }
        auto conn = std::make_shared<Conn>();
        conn->tag = next_conn_tag_.fetch_add(1);
        conn->sock = std::move(client);
        conn->sock.set_nodelay(true);
        std::lock_guard<lockdep::Mutex> lock(conns_mutex_);
        if (stopping_.load(std::memory_order_relaxed)) return;
        conns_.push_back(conn);
        conn_threads_.emplace_back([this, conn] { serve_conn(conn); });
    }
}

void Server::serve_conn(std::shared_ptr<Conn> conn) {
    try {
        FrameHeader header;
        std::vector<std::byte> payload;
        // Client reference → manager job id. Touched only by this reader
        // thread (Submit and Cancel both arrive here), so no lock needed.
        std::map<std::uint64_t, std::uint64_t> jobs;
        while (conn->open.load(std::memory_order_relaxed)) {
            if (!read_frame(conn->sock, header, payload)) break;  // clean EOF
            const auto kind = static_cast<FrameKind>(header.kind);
            const std::uint64_t ref = header.job_id;
            switch (kind) {
                case FrameKind::Submit: {
                    const JobSpec spec = decode_job_spec(payload.data(), payload.size());
                    // The event callback holds the Conn alive (shared_ptr)
                    // and maps manager events onto wire frames keyed by the
                    // client's reference.
                    const SubmitResult res = manager_->submit(
                        spec,
                        [conn, ref](const JobEvent& e) {
                            switch (e.state) {
                                case JobState::Running:
                                case JobState::Suspended: {
                                    std::vector<std::byte> p;
                                    encode_job_progress(
                                        {static_cast<std::int32_t>(e.ts),
                                         static_cast<std::int32_t>(e.total_ts)},
                                        p);
                                    conn->send(FrameKind::Progress, ref, p);
                                    break;
                                }
                                case JobState::Done: {
                                    JobDone d;
                                    d.checksums = e.checksums;
                                    d.elapsed_s = e.elapsed_s;
                                    d.suspends = e.suspends;
                                    d.retries = e.retries;
                                    std::vector<std::byte> p;
                                    encode_job_done(d, p);
                                    conn->send(FrameKind::Done, ref, p);
                                    break;
                                }
                                case JobState::Failed:
                                    conn->send(FrameKind::Failed, ref,
                                               encode_string(e.error));
                                    break;
                                case JobState::Cancelled:
                                    conn->send(FrameKind::Failed, ref,
                                               encode_string("cancelled"));
                                    break;
                                case JobState::Queued: break;
                            }
                        },
                        conn->tag);
                    if (res.accepted) {
                        jobs[ref] = res.id;
                        conn->send(FrameKind::Accepted, ref, {});
                    } else {
                        conn->send(FrameKind::Rejected, ref, encode_string(res.reason));
                    }
                    break;
                }
                case FrameKind::Cancel: {
                    const auto it = jobs.find(ref);
                    if (it != jobs.end()) manager_->cancel(it->second);
                    break;
                }
                case FrameKind::StatsReq: {
                    std::vector<std::byte> p;
                    encode_server_stats(manager_->stats(), p);
                    conn->send(FrameKind::Stats, 0, p);
                    break;
                }
                case FrameKind::Bye: conn->open.store(false); break;
                default:
                    throw Error("serve: unexpected client frame kind " +
                                std::to_string(header.kind));
            }
        }
    } catch (const std::exception&) {
        // Fall through to cleanup: a torn connection is routine.
    }
    conn->open.store(false, std::memory_order_relaxed);
    manager_->cancel_conn(conn->tag);  // stop() joins this thread before reset
    {
        std::lock_guard<lockdep::Mutex> lock(conn->write_mutex);
        conn->sock.close();
    }
}

}  // namespace dfamr::serve
