// dfamr_serve — the multi-tenant simulation server daemon.
//
// Listens for DFS1 clients, admits simulation jobs under a queue-depth and
// thread-budget cap, schedules them fairly across tenants (deficit-weighted
// round robin; deadline jobs earliest-deadline-first, with preemption via
// suspend-to-memory), and streams progress back. Runs until SIGINT/SIGTERM
// or, with --run_for, a fixed duration.
//
//   dfamr_serve --port 7070 --pool_workers 8 --max_queue 512
//               --max_inflight 16 --slice_tsteps 3

#include <csignal>
#include <cstdio>
#include <thread>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "resilience/fault_plan.hpp"
#include "serve/server.hpp"

namespace {
volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }
}  // namespace

int main(int argc, char** argv) {
    using namespace dfamr;
    CliParser cli("dfamr_serve — multi-tenant AMR simulation server");
    cli.add_option("--host", "listen address", "127.0.0.1");
    cli.add_option("--port", "listen port (0 = ephemeral, printed on stdout)", "7070");
    cli.add_option("--pool_workers", "shared pool workers (max concurrent segments)", "4");
    cli.add_option("--max_queue", "admission: max queued jobs", "256");
    cli.add_option("--max_inflight", "admission: max total cost (ranks*workers) running",
                   "8");
    cli.add_option("--quantum", "DRR credit per tenant visit", "1");
    cli.add_option("--slice_tsteps", "timesteps per segment before forced suspend (0=off)",
                   "0");
    cli.add_option("--checkpoint_every",
                   "timesteps between in-memory crash-recovery snapshots (0=off)", "0");
    cli.add_option("--retry_limit", "crash-recovery restarts per job", "2");
    cli.add_option("--run_for", "exit after this many seconds (0 = run until signal)", "0");
    resilience::FaultConfig::register_cli(cli);

    try {
        if (!cli.parse(argc, argv)) return 0;
        serve::ServerOptions opts;
        opts.host = cli.get_string("--host");
        opts.port = static_cast<std::uint16_t>(cli.get_int("--port"));
        opts.manager.pool_workers = static_cast<int>(cli.get_int("--pool_workers"));
        opts.manager.max_queue = static_cast<int>(cli.get_int("--max_queue"));
        opts.manager.max_inflight_cost = static_cast<int>(cli.get_int("--max_inflight"));
        opts.manager.quantum = static_cast<int>(cli.get_int("--quantum"));
        opts.manager.slice_tsteps = static_cast<int>(cli.get_int("--slice_tsteps"));
        opts.manager.checkpoint_every = static_cast<int>(cli.get_int("--checkpoint_every"));
        opts.manager.retry_limit = static_cast<int>(cli.get_int("--retry_limit"));
        opts.manager.faults = resilience::FaultConfig::from_cli(cli);
        const double run_for = cli.get_double("--run_for");

        std::signal(SIGINT, on_signal);
        std::signal(SIGTERM, on_signal);

        serve::Server server(opts);
        std::printf("dfamr_serve listening on %s:%u (pool=%d, budget=%d, queue=%d)\n",
                    opts.host.c_str(), server.port(), opts.manager.pool_workers,
                    opts.manager.max_inflight_cost, opts.manager.max_queue);
        std::fflush(stdout);

        const auto start = std::chrono::steady_clock::now();
        while (g_stop == 0) {
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
            if (run_for > 0 &&
                std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                        .count() >= run_for) {
                break;
            }
        }
        server.stop();
        const serve::ServerStats s = server.stats();
        std::printf("dfamr_serve: done=%llu failed=%llu cancelled=%llu rejected=%llu "
                    "suspends=%llu resumes=%llu preemptions=%llu crash_retries=%llu\n",
                    static_cast<unsigned long long>(s.done),
                    static_cast<unsigned long long>(s.failed),
                    static_cast<unsigned long long>(s.cancelled),
                    static_cast<unsigned long long>(s.rejected),
                    static_cast<unsigned long long>(s.suspends),
                    static_cast<unsigned long long>(s.resumes),
                    static_cast<unsigned long long>(s.preemptions),
                    static_cast<unsigned long long>(s.crash_retries));
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "dfamr_serve: %s\n", e.what());
        return 1;
    }
}
