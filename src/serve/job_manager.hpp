// Multi-tenant job execution engine of the serve plane.
//
// One JobManager owns one shared work pool (a tasking::Runtime) and runs
// every admitted simulation job on it. A job executes as a sequence of
// *segments*: each segment is one task on the pool that drives
// core::run_variant with an in-process world until the job completes, is
// cancelled, or is suspended at a timestep boundary into an in-memory
// checkpoint image (core/run_control.hpp). A suspended job's next segment
// resumes from that image with the full checksum history intact, so its
// final checksums are bit-identical to an uninterrupted run.
//
// Scheduling policy (DESIGN.md §15):
//   * Admission control — a Submit is rejected when the queue is at
//     max_queue, or when the job's cost (ranks × workers, i.e. the thread
//     budget a running segment occupies) can never fit max_inflight_cost.
//   * Two lanes — jobs with deadlines dispatch earliest-deadline-first,
//     ahead of the fair-share pool; best-effort jobs dispatch by
//     deficit-weighted round robin across tenants (quantum × weight credit
//     per visit), so each tenant's share of pool slots tracks its weight
//     regardless of how many jobs it floods in.
//   * Preemption — when an urgent deadline job cannot fit, the running job
//     with the latest deadline (best-effort = latest of all) is asked to
//     suspend; it parks at its next timestep boundary and requeues at the
//     front of its tenant queue.
//   * Time slicing — slice_tsteps > 0 bounds any segment to that many
//     timesteps, forcing long jobs through suspend/resume cycles instead
//     of monopolizing pool slots.
//   * Crash recovery — with chaos enabled (FaultConfig), a segment that
//     dies from an injected rank crash is retried from the latest
//     in-memory image (or from scratch), with crash injection disabled on
//     the retry so the deterministic plan cannot re-kill it.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/lockdep.hpp"
#include "core/variants.hpp"
#include "resilience/fault_plan.hpp"
#include "serve/job.hpp"
#include "serve/protocol.hpp"
#include "tasking/runtime.hpp"

namespace dfamr::serve {

struct JobManagerOptions {
    /// Workers of the shared pool = max concurrently running segments.
    int pool_workers = 4;
    /// Admission: queued jobs beyond this are rejected.
    int max_queue = 256;
    /// Admission + dispatch: total cost (ranks × workers) of concurrently
    /// running segments stays within this thread budget.
    int max_inflight_cost = 8;
    /// DRR credit granted per tenant visit (multiplied by tenant weight).
    int quantum = 1;
    /// Max timesteps per segment; 0 = run to completion unless preempted.
    int slice_tsteps = 0;
    /// Timesteps between in-memory checkpoints inside a segment (crash
    /// recovery granularity); 0 = only suspend points produce images.
    int checkpoint_every = 0;
    /// Chaos template applied to every job (seed is remixed per job). All
    /// faults off by default.
    resilience::FaultConfig faults;
    /// Crash-recovery restarts per job before it is Failed.
    int retry_limit = 2;
    /// Construct with dispatch paused (tests build queue states first).
    bool start_paused = false;
};

struct SubmitResult {
    bool accepted = false;
    std::uint64_t id = 0;
    std::string reason;  // on rejection
};

class JobManager {
public:
    explicit JobManager(const JobManagerOptions& opts);
    /// Cancels everything still in flight and drains the pool.
    ~JobManager();

    JobManager(const JobManager&) = delete;
    JobManager& operator=(const JobManager&) = delete;

    /// Admission decision + enqueue. `on_event` (may be empty) receives
    /// Progress/Suspended/terminal snapshots; it is called from pool and
    /// rank threads and must be thread-safe and non-blocking-ish.
    /// `conn_tag` groups jobs for cancel_conn (server disconnect cleanup).
    SubmitResult submit(const JobSpec& spec, JobEventFn on_event,
                        std::uint64_t conn_tag = 0);

    /// Requests cancellation; terminal shortly after (running jobs stop at
    /// the next timestep boundary). False if unknown or already terminal.
    bool cancel(std::uint64_t id);
    /// Cancels every non-terminal job submitted with this conn_tag.
    int cancel_conn(std::uint64_t conn_tag);

    /// Asks a running job to park as Suspended (it stays parked until
    /// resume()); queued jobs cannot be manually suspended.
    bool suspend(std::uint64_t id);
    /// Requeues a Suspended job at the front of its tenant queue.
    bool resume(std::uint64_t id);

    /// Dispatch gate for deterministic tests: while paused, accepted jobs
    /// only queue up.
    void pause();
    void unpause();

    /// Blocks until no job is Queued or Running (manually Suspended jobs
    /// do not count — they are parked by request).
    void drain();

    /// Blocks until the job is terminal; returns its final event snapshot.
    JobEvent wait(std::uint64_t id);

    JobState state(std::uint64_t id) const;
    ServerStats stats() const;

private:
    struct Job {
        std::uint64_t id = 0;
        std::uint64_t conn_tag = 0;
        JobSpec spec;
        amr::Config cfg;
        int cost = 1;
        JobEventFn on_event;

        JobState state = JobState::Queued;  // guarded by mutex_
        /// Polled by the rank-0 control hook at timestep boundaries.
        std::atomic<core::RunAction> requested{core::RunAction::Continue};
        std::atomic<int> tsteps_done{0};
        bool manual_suspend = false;    // park instead of requeue
        bool preempt_requested = false;
        bool pending_resume = false;    // next dispatch is a resume
        /// Latest suspend/periodic checkpoint image. Written by the rank-0
        /// callback inside a segment; the segment's thread join makes it
        /// visible to the pool thread that finishes the segment.
        std::vector<std::byte> image;
        int segment_start_ts = 0;
        int suspends = 0;
        int retries = 0;
        double deadline_abs = 0;  // seconds since manager epoch; <=0: none
        bool has_deadline = false;
        std::chrono::steady_clock::time_point first_dispatch{};
        bool dispatched_once = false;
        JobEvent final_event;  // valid once terminal
    };

    struct Tenant {
        std::deque<Job*> queue;
        int weight = 1;
        std::int64_t deficit = 0;
    };

    double now_s() const;
    void emit(std::vector<JobEvent>& out, const Job& job, JobState state) const;

    /// Scheduling pass: fills free slots (EDF lane, then DRR), requests a
    /// preemption if an urgent job is blocked, and returns the jobs to
    /// start. Caller submits them to the pool after unlocking.
    std::vector<Job*> dispatch_locked();
    Job* earliest_deadline_locked() const;
    Job* pick_drr_locked();
    void maybe_preempt_locked();
    bool fits_budget_locked(const Job& job) const;
    void activate_tenant_locked(const std::string& name);
    void remove_from_queue_locked(Job* job);
    void requeue_front_locked(Job* job);
    void finish_locked(Job* job, JobState state, std::vector<JobEvent>& events);
    void dispatch_and_run(std::unique_lock<lockdep::Mutex>& lock);

    void run_segment(Job* job);
    void segment_finished(Job* job, const core::RunResult& result);
    void segment_crashed(Job* job, const std::string& what);

    JobManagerOptions opts_;
    std::chrono::steady_clock::time_point epoch_;

    mutable lockdep::Mutex mutex_{"serve.jobs"};
    std::condition_variable_any cv_;

    std::map<std::uint64_t, std::unique_ptr<Job>> jobs_;
    std::map<std::string, Tenant> tenants_;
    std::vector<std::string> active_tenants_;  // DRR rotation
    std::size_t drr_cursor_ = 0;

    std::uint64_t next_id_ = 1;
    int queued_ = 0;
    int suspended_ = 0;
    int running_segments_ = 0;  // == jobs in Running state (1:1 with segments)
    int inflight_cost_ = 0;
    int non_terminal_ = 0;
    bool paused_ = false;
    bool stopping_ = false;
    ServerStats stats_;

    /// The shared pool. Reset explicitly in ~JobManager once every
    /// segment has returned.
    std::unique_ptr<tasking::Runtime> pool_;
};

}  // namespace dfamr::serve
