// Job lifecycle of the serve plane. States and the event snapshot the
// JobManager publishes to its host (the server forwards events as wire
// frames; tests subscribe directly).
//
// State machine:
//
//   Queued ──dispatch──▶ Running ──complete──▶ Done
//     │                    │  ▲                Failed (error, retries spent)
//     │                    │  └─resume──┐
//     │                 suspend         │
//     │                    ▼            │
//     │                 Suspended ──requeue──▶ Queued
//     └────────────────cancel─────────────────▶ Cancelled
//
// Suspend parks the run as an in-memory checkpoint image (the same byte
// format the resilience layer writes to disk); resume re-enters the
// timestep loop from that image with the full checksum history intact, so
// a job that was suspended N times still reports checksums bit-identical
// to an uninterrupted solo run.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace dfamr::serve {

enum class JobState : std::uint32_t {
    Queued = 0,
    Running = 1,
    Suspended = 2,
    Done = 3,
    Failed = 4,
    Cancelled = 5,
};

const char* to_string(JobState s);

inline bool is_terminal(JobState s) {
    return s == JobState::Done || s == JobState::Failed || s == JobState::Cancelled;
}

/// Snapshot published on every state change and on per-timestep progress.
/// Terminal payload fields are only meaningful in the matching state.
struct JobEvent {
    std::uint64_t id = 0;  // manager-assigned job id
    JobState state = JobState::Queued;
    int ts = 0;        // last completed timestep
    int total_ts = 0;  // cfg.num_tsteps
    // Done:
    std::vector<double> checksums;
    double elapsed_s = 0;  // first dispatch → terminal
    int suspends = 0;
    int retries = 0;
    // Failed:
    std::string error;
};

using JobEventFn = std::function<void(const JobEvent&)>;

}  // namespace dfamr::serve
