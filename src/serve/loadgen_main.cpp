// dfamr_loadgen — open-loop load generator and correctness checker for
// dfamr-serve.
//
// Two modes:
//   --server host:port   drive an already-running dfamr_serve
//   --spawn              start an in-process Server first (default). This
//                        mode also proves resource hygiene: fd and thread
//                        counts of the whole process (server included) must
//                        return to baseline after the run.
//
// Every completed job's checksum history is compared bit-for-bit against a
// solo run of the same spec; --min_concurrent / --min_suspended /
// --check_leaks turn soak expectations into a nonzero exit code.
//
//   dfamr_loadgen --spawn --jobs 150 --min_duration 60 --chaos
//                 --min_concurrent 100 --min_suspended 10 --json soak.json

#include <cstdio>
#include <fstream>
#include <optional>
#include <thread>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "resilience/fault_plan.hpp"
#include "serve/loadgen.hpp"
#include "serve/server.hpp"

int main(int argc, char** argv) {
    using namespace dfamr;
    CliParser cli("dfamr_loadgen — load generator for dfamr_serve");
    cli.add_option("--server", "host:port of a running dfamr_serve (empty = --spawn)", "");
    cli.add_flag("--spawn", "run an in-process server (default when --server is empty)");
    cli.add_option("--jobs", "minimum jobs to submit", "100");
    cli.add_option("--min_duration", "keep submitting for at least this many seconds", "0");
    cli.add_option("--interarrival_ms", "open-loop arrival spacing", "2");
    cli.add_option("--tenants", "distinct tenants in the mix", "4");
    cli.add_option("--distinct_specs", "distinct (seed,variant) specs in the mix", "6");
    cli.add_option("--deadline_every", "every Nth job gets a deadline (0 = none)", "0");
    cli.add_option("--deadline_s", "relative deadline for deadline jobs", "30");
    cli.add_option("--ranks", "ranks per job", "1");
    cli.add_option("--workers", "workers per rank per job", "1");
    cli.add_option("--nx", "cells per block per dim", "8");
    cli.add_option("--num_vars", "variables per cell", "8");
    cli.add_option("--num_tsteps", "timesteps per job", "4");
    cli.add_option("--scenario", "single_sphere | four_spheres | gaussian | slotted_cylinder | front", "single_sphere");
    cli.add_flag("--no_verify", "skip solo-reference checksum comparison");
    // In-process server knobs (--spawn mode):
    cli.add_option("--pool_workers", "server pool workers", "4");
    cli.add_option("--max_queue", "server admission queue cap", "512");
    cli.add_option("--max_inflight", "server inflight cost budget", "8");
    cli.add_option("--slice_tsteps", "server time-slice (forces suspend/resume)", "0");
    cli.add_flag("--chaos", "enable the default chaos mix (drops+delays+crashes)");
    resilience::FaultConfig::register_cli(cli);
    // Soak assertions:
    cli.add_option("--min_concurrent", "require peak in-flight jobs >= N", "0");
    cli.add_option("--min_suspended", "require >= N jobs went through suspend/resume", "0");
    cli.add_flag("--check_leaks", "require fd/thread counts back at baseline (--spawn)");
    cli.add_option("--json", "write the report JSON to this file", "");

    try {
        if (!cli.parse(argc, argv)) return 0;

        serve::LoadGenOptions opts;
        opts.jobs = static_cast<int>(cli.get_int("--jobs"));
        opts.min_duration_s = cli.get_double("--min_duration");
        opts.interarrival_ms = cli.get_double("--interarrival_ms");
        opts.tenants = static_cast<int>(cli.get_int("--tenants"));
        opts.distinct_specs = static_cast<int>(cli.get_int("--distinct_specs"));
        opts.deadline_every = static_cast<int>(cli.get_int("--deadline_every"));
        opts.deadline_s = cli.get_double("--deadline_s");
        opts.verify = !cli.get_flag("--no_verify");
        opts.base.scenario = cli.get_string("--scenario");
        opts.base.ranks = static_cast<int>(cli.get_int("--ranks"));
        opts.base.workers = static_cast<int>(cli.get_int("--workers"));
        opts.base.nx = static_cast<int>(cli.get_int("--nx"));
        opts.base.num_vars = static_cast<int>(cli.get_int("--num_vars"));
        opts.base.num_tsteps = static_cast<int>(cli.get_int("--num_tsteps"));

        const std::string server_addr = cli.get_string("--server");
        const int fds_before = serve::count_open_fds();
        const int threads_before = serve::count_threads();

        std::optional<serve::Server> server;
        net::HostPort addr;
        if (server_addr.empty()) {
            serve::ServerOptions sopts;
            sopts.manager.pool_workers = static_cast<int>(cli.get_int("--pool_workers"));
            sopts.manager.max_queue = static_cast<int>(cli.get_int("--max_queue"));
            sopts.manager.max_inflight_cost =
                static_cast<int>(cli.get_int("--max_inflight"));
            sopts.manager.slice_tsteps = static_cast<int>(cli.get_int("--slice_tsteps"));
            sopts.manager.faults = resilience::FaultConfig::from_cli(cli);
            if (cli.get_flag("--chaos")) {
                sopts.manager.faults.drop_prob = 0.02;
                sopts.manager.faults.delay_prob = 0.05;
                sopts.manager.faults.max_delay_ns = 100'000;
                sopts.manager.faults.crash_rank = 0;
                // Low enough that the soak's small multi-rank jobs actually
                // reach it, so crash recovery is exercised, not just armed.
                sopts.manager.faults.crash_after_sends = 60;
                if (sopts.manager.faults.seed == 1) sopts.manager.faults.seed = 7;
            }
            server.emplace(sopts);
            addr = {"127.0.0.1", server->port()};
        } else {
            const auto colon = server_addr.rfind(':');
            DFAMR_REQUIRE(colon != std::string::npos, "--server must be host:port");
            addr.host = server_addr.substr(0, colon);
            addr.port = static_cast<std::uint16_t>(std::stoi(server_addr.substr(colon + 1)));
        }

        serve::LoadGenReport report = serve::run_loadgen(addr, opts);
        if (server) {
            server->stop();
            report.server = server->stats();
            server.reset();
        }

        bool ok = true;
        const int min_concurrent = static_cast<int>(cli.get_int("--min_concurrent"));
        const int min_suspended = static_cast<int>(cli.get_int("--min_suspended"));
        if (report.checksum_mismatches != 0) {
            std::fprintf(stderr, "FAIL: %d checksum mismatches\n",
                         report.checksum_mismatches);
            ok = false;
        }
        if (report.failed != 0) {
            std::fprintf(stderr, "FAIL: %d failed jobs\n", report.failed);
            ok = false;
        }
        if (report.peak_inflight < min_concurrent) {
            std::fprintf(stderr, "FAIL: peak concurrency %d < required %d\n",
                         report.peak_inflight, min_concurrent);
            ok = false;
        }
        if (report.suspended_jobs < min_suspended) {
            std::fprintf(stderr, "FAIL: only %d jobs suspended/resumed (need %d)\n",
                         report.suspended_jobs, min_suspended);
            ok = false;
        }
        if (cli.get_flag("--check_leaks")) {
            // Let reaped threads/fds settle before probing.
            int fds_after = 0;
            int threads_after = 0;
            for (int attempt = 0; attempt < 50; ++attempt) {
                fds_after = serve::count_open_fds();
                threads_after = serve::count_threads();
                if (fds_after <= fds_before && threads_after <= threads_before) break;
                std::this_thread::sleep_for(std::chrono::milliseconds(100));
            }
            if (fds_after > fds_before || threads_after > threads_before) {
                std::fprintf(stderr, "FAIL: leak check: fds %d -> %d, threads %d -> %d\n",
                             fds_before, fds_after, threads_before, threads_after);
                ok = false;
            } else {
                std::printf("leak check: fds %d -> %d, threads %d -> %d\n", fds_before,
                            fds_after, threads_before, threads_after);
            }
        }

        const std::string json = report.to_json();
        std::printf("%s\n", json.c_str());
        const std::string json_path = cli.get_string("--json");
        if (!json_path.empty()) {
            std::ofstream out(json_path);
            out << json << "\n";
        }
        std::printf("loadgen: submitted=%d done=%d rejected=%d failed=%d mismatches=%d "
                    "peak_inflight=%d suspended_jobs=%d retried_jobs=%d %.1f jobs/s "
                    "p50=%.0fms p99=%.0fms\n",
                    report.submitted, report.done, report.rejected, report.failed,
                    report.checksum_mismatches, report.peak_inflight, report.suspended_jobs,
                    report.retried_jobs, report.jobs_per_s, report.p50_ms, report.p99_ms);
        return ok ? 0 : 1;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "dfamr_loadgen: %s\n", e.what());
        return 1;
    }
}
