#include "serve/client.hpp"

#include <sys/socket.h>

#include <mutex>

#include "common/error.hpp"

namespace dfamr::serve {

Client::Client(const net::HostPort& addr) {
    sock_ = net::dial(addr, /*attempts=*/50);
    sock_.set_nodelay(true);
    reader_ = std::thread([this] { reader_loop(); });
}

Client::~Client() {
    close();
    if (reader_.joinable()) reader_.join();
}

void Client::close() {
    {
        std::lock_guard<lockdep::Mutex> lock(mutex_);
        if (closed_) return;
        closed_ = true;
        try {
            write_frame(sock_, FrameKind::Bye, 0, {});
        } catch (const std::exception&) {
        }
        if (sock_.valid()) ::shutdown(sock_.fd(), SHUT_RDWR);
    }
    if (reader_.joinable() && reader_.get_id() != std::this_thread::get_id()) {
        reader_.join();
    }
}

void Client::send_frame(FrameKind kind, std::uint64_t ref,
                        const std::vector<std::byte>& payload) {
    std::lock_guard<lockdep::Mutex> lock(mutex_);
    DFAMR_REQUIRE(!closed_, "serve client: connection closed");
    write_frame(sock_, kind, ref, payload);
}

std::uint64_t Client::submit(const JobSpec& spec) {
    std::vector<std::byte> payload;
    encode_job_spec(spec, payload);
    std::lock_guard<lockdep::Mutex> lock(mutex_);
    DFAMR_REQUIRE(!closed_, "serve client: connection closed");
    const std::uint64_t ref = next_ref_++;
    Slot& slot = slots_[ref];
    slot.submitted = std::chrono::steady_clock::now();
    const int now = inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
    int peak = peak_inflight_.load(std::memory_order_relaxed);
    while (now > peak &&
           !peak_inflight_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
    }
    write_frame(sock_, FrameKind::Submit, ref, payload);
    return ref;
}

ClientJobResult Client::wait(std::uint64_t ref) {
    std::unique_lock<lockdep::Mutex> lock(mutex_);
    const auto it = slots_.find(ref);
    DFAMR_REQUIRE(it != slots_.end(), "serve client: wait on unknown job ref");
    cv_.wait(lock, [&] { return it->second.terminal; });
    return it->second.result;
}

void Client::cancel(std::uint64_t ref) { send_frame(FrameKind::Cancel, ref, {}); }

ServerStats Client::stats() {
    std::unique_lock<lockdep::Mutex> lock(mutex_);
    DFAMR_REQUIRE(!closed_, "serve client: connection closed");
    const std::uint64_t want = stats_generation_ + 1;
    write_frame(sock_, FrameKind::StatsReq, 0, {});
    cv_.wait(lock, [&] { return stats_generation_ >= want || closed_; });
    DFAMR_REQUIRE(stats_generation_ >= want, "serve client: connection lost awaiting stats");
    return last_stats_;
}

Client::Slot& Client::slot_locked(std::uint64_t ref) {
    const auto it = slots_.find(ref);
    DFAMR_REQUIRE(it != slots_.end(), "serve client: frame for unknown job ref");
    return it->second;
}

void Client::reader_loop() {
    try {
        FrameHeader header;
        std::vector<std::byte> payload;
        while (read_frame(sock_, header, payload)) {
            const auto kind = static_cast<FrameKind>(header.kind);
            std::lock_guard<lockdep::Mutex> lock(mutex_);
            switch (kind) {
                case FrameKind::Accepted: slot_locked(header.job_id).result.accepted = true; break;
                case FrameKind::Rejected: {
                    Slot& slot = slot_locked(header.job_id);
                    slot.result.error = decode_string(payload.data(), payload.size());
                    slot.result.latency_s =
                        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                      slot.submitted)
                            .count();
                    slot.terminal = true;
                    inflight_.fetch_sub(1, std::memory_order_relaxed);
                    cv_.notify_all();
                    break;
                }
                case FrameKind::Progress:
                    ++slot_locked(header.job_id).result.progress_frames;
                    break;
                case FrameKind::Done: {
                    Slot& slot = slot_locked(header.job_id);
                    const JobDone d = decode_job_done(payload.data(), payload.size());
                    slot.result.done = true;
                    slot.result.checksums = d.checksums;
                    slot.result.elapsed_s = d.elapsed_s;
                    slot.result.suspends = d.suspends;
                    slot.result.retries = d.retries;
                    slot.result.latency_s =
                        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                      slot.submitted)
                            .count();
                    slot.terminal = true;
                    inflight_.fetch_sub(1, std::memory_order_relaxed);
                    cv_.notify_all();
                    break;
                }
                case FrameKind::Failed: {
                    Slot& slot = slot_locked(header.job_id);
                    slot.result.error = decode_string(payload.data(), payload.size());
                    slot.result.latency_s =
                        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                      slot.submitted)
                            .count();
                    slot.terminal = true;
                    inflight_.fetch_sub(1, std::memory_order_relaxed);
                    cv_.notify_all();
                    break;
                }
                case FrameKind::Stats: {
                    last_stats_ = decode_server_stats(payload.data(), payload.size());
                    ++stats_generation_;
                    cv_.notify_all();
                    break;
                }
                default:
                    throw Error("serve client: unexpected server frame kind " +
                                std::to_string(header.kind));
            }
        }
    } catch (const std::exception&) {
        // Connection torn down (or protocol error): resolve every waiter.
    }
    std::lock_guard<lockdep::Mutex> lock(mutex_);
    closed_ = true;
    for (auto& [ref, slot] : slots_) {
        if (slot.terminal) continue;
        slot.result.error = "connection lost";
        slot.terminal = true;
        inflight_.fetch_sub(1, std::memory_order_relaxed);
    }
    cv_.notify_all();
}

}  // namespace dfamr::serve
