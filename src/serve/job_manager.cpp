#include "serve/job_manager.hpp"

#include <algorithm>
#include <limits>

#include "amr/scratch.hpp"
#include "common/error.hpp"

namespace dfamr::serve {

const char* to_string(JobState s) {
    switch (s) {
        case JobState::Queued: return "queued";
        case JobState::Running: return "running";
        case JobState::Suspended: return "suspended";
        case JobState::Done: return "done";
        case JobState::Failed: return "failed";
        case JobState::Cancelled: return "cancelled";
    }
    return "?";
}

JobManager::JobManager(const JobManagerOptions& opts)
    : opts_(opts), epoch_(std::chrono::steady_clock::now()) {
    DFAMR_REQUIRE(opts_.pool_workers >= 1, "serve: pool needs at least one worker");
    DFAMR_REQUIRE(opts_.max_inflight_cost >= 1, "serve: inflight budget must be positive");
    DFAMR_REQUIRE(opts_.quantum >= 1, "serve: DRR quantum must be positive");
    paused_ = opts_.start_paused;
    pool_ = std::make_unique<tasking::Runtime>(opts_.pool_workers);
}

JobManager::~JobManager() {
    std::vector<JobEvent> events;
    {
        std::unique_lock<lockdep::Mutex> lock(mutex_);
        stopping_ = true;
        for (auto& [id, job] : jobs_) {
            if (is_terminal(job->state)) continue;
            if (job->state == JobState::Running) {
                job->requested.store(core::RunAction::Cancel, std::memory_order_relaxed);
            } else {  // Queued or Suspended: no segment in flight
                if (job->state == JobState::Queued) remove_from_queue_locked(job.get());
                finish_locked(job.get(), JobState::Cancelled, events);
            }
        }
        cv_.wait(lock, [&] { return non_terminal_ == 0; });
    }
    // jobs_ is stable now: stopping_ rejects submits, every segment returned.
    for (const JobEvent& e : events) {
        const auto it = jobs_.find(e.id);
        if (it != jobs_.end() && it->second->on_event) it->second->on_event(e);
    }
    pool_.reset();  // quiescent: no segment task outstanding
}

double JobManager::now_s() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_).count();
}

void JobManager::emit(std::vector<JobEvent>& out, const Job& job, JobState state) const {
    JobEvent e;
    e.id = job.id;
    e.state = state;
    e.ts = job.tsteps_done.load(std::memory_order_relaxed);
    e.total_ts = job.cfg.num_tsteps;
    e.suspends = job.suspends;
    e.retries = job.retries;
    if (job.dispatched_once) {
        e.elapsed_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                    job.first_dispatch)
                          .count();
    }
    out.push_back(std::move(e));
}

SubmitResult JobManager::submit(const JobSpec& spec, JobEventFn on_event,
                                std::uint64_t conn_tag) {
    SubmitResult res;
    amr::Config cfg;
    try {
        DFAMR_REQUIRE(spec.ranks >= 1 && spec.workers >= 1, "ranks and workers must be >= 1");
        DFAMR_REQUIRE(spec.num_tsteps >= 1, "num_tsteps must be >= 1");
        DFAMR_REQUIRE(spec.weight >= 1, "weight must be >= 1");
        cfg = job_config(spec);
    } catch (const std::exception& e) {
        std::lock_guard<lockdep::Mutex> lock(mutex_);
        ++stats_.submitted;
        ++stats_.rejected;
        res.reason = std::string("invalid job spec: ") + e.what();
        return res;
    }

    std::unique_lock<lockdep::Mutex> lock(mutex_);
    ++stats_.submitted;
    if (stopping_) {
        ++stats_.rejected;
        res.reason = "server is shutting down";
        return res;
    }
    if (queued_ >= opts_.max_queue) {
        ++stats_.rejected;
        res.reason = "queue full";
        return res;
    }
    if (spec.cost() > opts_.max_inflight_cost) {
        ++stats_.rejected;
        res.reason = "job cost exceeds server capacity";
        return res;
    }

    auto job = std::make_unique<Job>();
    job->id = next_id_++;
    job->conn_tag = conn_tag;
    job->spec = spec;
    job->cfg = cfg;
    if (opts_.checkpoint_every > 0) job->cfg.checkpoint_every = opts_.checkpoint_every;
    job->cost = spec.cost();
    job->on_event = std::move(on_event);
    if (spec.deadline_s > 0) {
        job->has_deadline = true;
        job->deadline_abs = now_s() + spec.deadline_s;
    }

    Tenant& tenant = tenants_[spec.tenant];
    tenant.weight = spec.weight;
    if (tenant.queue.empty()) activate_tenant_locked(spec.tenant);
    tenant.queue.push_back(job.get());
    ++queued_;
    ++non_terminal_;
    ++stats_.accepted;
    stats_.peak_queue = std::max<std::int32_t>(stats_.peak_queue, queued_);

    res.accepted = true;
    res.id = job->id;
    jobs_.emplace(job->id, std::move(job));
    dispatch_and_run(lock);
    return res;
}

bool JobManager::cancel(std::uint64_t id) {
    std::vector<JobEvent> events;
    JobEventFn fn;
    {
        std::unique_lock<lockdep::Mutex> lock(mutex_);
        const auto it = jobs_.find(id);
        if (it == jobs_.end() || is_terminal(it->second->state)) return false;
        Job* job = it->second.get();
        if (job->state == JobState::Running) {
            job->requested.store(core::RunAction::Cancel, std::memory_order_relaxed);
            return true;  // terminal event arrives from segment_finished
        }
        if (job->state == JobState::Queued) {
            remove_from_queue_locked(job);
        } else {  // Suspended
            --suspended_;
        }
        finish_locked(job, JobState::Cancelled, events);
        fn = job->on_event;
        dispatch_and_run(lock);
    }
    if (fn) {
        for (const JobEvent& e : events) fn(e);
    }
    return true;
}

int JobManager::cancel_conn(std::uint64_t conn_tag) {
    std::vector<std::uint64_t> ids;
    {
        std::lock_guard<lockdep::Mutex> lock(mutex_);
        for (const auto& [id, job] : jobs_) {
            if (job->conn_tag == conn_tag && !is_terminal(job->state)) ids.push_back(id);
        }
    }
    int n = 0;
    for (std::uint64_t id : ids) {
        if (cancel(id)) ++n;
    }
    return n;
}

bool JobManager::suspend(std::uint64_t id) {
    std::lock_guard<lockdep::Mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end() || it->second->state != JobState::Running) return false;
    it->second->manual_suspend = true;
    it->second->requested.store(core::RunAction::Suspend, std::memory_order_relaxed);
    return true;
}

bool JobManager::resume(std::uint64_t id) {
    std::unique_lock<lockdep::Mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end() || it->second->state != JobState::Suspended) return false;
    Job* job = it->second.get();
    job->manual_suspend = false;
    job->state = JobState::Queued;
    job->pending_resume = true;
    --suspended_;
    requeue_front_locked(job);
    dispatch_and_run(lock);
    return true;
}

void JobManager::pause() {
    std::lock_guard<lockdep::Mutex> lock(mutex_);
    paused_ = true;
}

void JobManager::unpause() {
    std::unique_lock<lockdep::Mutex> lock(mutex_);
    paused_ = false;
    dispatch_and_run(lock);
}

void JobManager::drain() {
    std::unique_lock<lockdep::Mutex> lock(mutex_);
    cv_.wait(lock, [&] { return queued_ == 0 && running_segments_ == 0; });
}

JobEvent JobManager::wait(std::uint64_t id) {
    std::unique_lock<lockdep::Mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    DFAMR_REQUIRE(it != jobs_.end(), "serve: wait on unknown job");
    Job* job = it->second.get();
    cv_.wait(lock, [&] { return is_terminal(job->state); });
    return job->final_event;
}

JobState JobManager::state(std::uint64_t id) const {
    std::lock_guard<lockdep::Mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    DFAMR_REQUIRE(it != jobs_.end(), "serve: state of unknown job");
    return it->second->state;
}

ServerStats JobManager::stats() const {
    std::lock_guard<lockdep::Mutex> lock(mutex_);
    ServerStats s = stats_;
    s.queued = queued_;
    s.running = running_segments_;  // Running jobs and in-flight segments are 1:1
    s.suspended = suspended_;
    s.inflight_cost = inflight_cost_;
    return s;
}

// ---- scheduling --------------------------------------------------------

bool JobManager::fits_budget_locked(const Job& job) const {
    return running_segments_ < opts_.pool_workers &&
           inflight_cost_ + job.cost <= opts_.max_inflight_cost;
}

void JobManager::activate_tenant_locked(const std::string& name) {
    if (std::find(active_tenants_.begin(), active_tenants_.end(), name) ==
        active_tenants_.end()) {
        active_tenants_.push_back(name);
    }
}

void JobManager::remove_from_queue_locked(Job* job) {
    Tenant& tenant = tenants_.at(job->spec.tenant);
    const auto it = std::find(tenant.queue.begin(), tenant.queue.end(), job);
    DFAMR_REQUIRE(it != tenant.queue.end(), "serve: job missing from tenant queue");
    tenant.queue.erase(it);
    --queued_;
    if (tenant.queue.empty()) {
        tenant.deficit = 0;
        const auto at =
            std::find(active_tenants_.begin(), active_tenants_.end(), job->spec.tenant);
        if (at != active_tenants_.end()) {
            const std::size_t idx = static_cast<std::size_t>(at - active_tenants_.begin());
            active_tenants_.erase(at);
            if (drr_cursor_ > idx) --drr_cursor_;
        }
    }
}

void JobManager::requeue_front_locked(Job* job) {
    Tenant& tenant = tenants_.at(job->spec.tenant);
    if (tenant.queue.empty()) activate_tenant_locked(job->spec.tenant);
    tenant.queue.push_front(job);
    ++queued_;
    stats_.peak_queue = std::max<std::int32_t>(stats_.peak_queue, queued_);
}

JobManager::Job* JobManager::earliest_deadline_locked() const {
    Job* best = nullptr;
    for (const auto& name : active_tenants_) {
        for (Job* job : tenants_.at(name).queue) {
            if (!job->has_deadline) continue;
            if (best == nullptr || job->deadline_abs < best->deadline_abs) best = job;
        }
    }
    return best;
}

JobManager::Job* JobManager::pick_drr_locked() {
    // Deficit round robin over the active tenants: a visited tenant earns
    // quantum × weight credit; its head job dispatches once the credit
    // covers the job's cost, and the cursor stays put so remaining credit
    // can be spent before the rotation moves on (that is what weight
    // buys). The scan is bounded by the visits needed for any head to earn
    // full credit; the deficit cap keeps budget-blocked tenants from
    // banking unbounded credit.
    if (active_tenants_.empty()) return nullptr;
    const std::size_t max_visits =
        active_tenants_.size() *
        (static_cast<std::size_t>(opts_.max_inflight_cost / opts_.quantum) + 2);
    for (std::size_t i = 0; i < max_visits && !active_tenants_.empty(); ++i) {
        if (drr_cursor_ >= active_tenants_.size()) drr_cursor_ = 0;
        Tenant& tenant = tenants_.at(active_tenants_[drr_cursor_]);
        DFAMR_REQUIRE(!tenant.queue.empty(), "serve: empty tenant in DRR rotation");
        Job* head = tenant.queue.front();
        if (tenant.deficit < head->cost) {
            const std::int64_t credit =
                static_cast<std::int64_t>(opts_.quantum) * tenant.weight;
            tenant.deficit = std::min(tenant.deficit + credit, head->cost + credit);
            ++drr_cursor_;
            continue;
        }
        if (!fits_budget_locked(*head)) return nullptr;  // head-of-line: no bypass
        tenant.deficit -= head->cost;
        return head;
    }
    return nullptr;
}

void JobManager::maybe_preempt_locked() {
    // An urgent deadline job that cannot start may suspend the running job
    // with the latest deadline (best-effort counts as infinitely late).
    // Any deadline job still queued here was blocked by the dispatch loop.
    const Job* urgent = earliest_deadline_locked();
    if (urgent == nullptr) return;
    Job* victim = nullptr;
    double victim_deadline = -1;
    for (const auto& [id, job] : jobs_) {
        if (job->state != JobState::Running || job->preempt_requested) continue;
        if (job->requested.load(std::memory_order_relaxed) != core::RunAction::Continue)
            continue;
        const double deadline = job->has_deadline ? job->deadline_abs
                                                  : std::numeric_limits<double>::infinity();
        if (deadline <= urgent->deadline_abs) continue;  // victim is more urgent
        if (victim == nullptr || deadline > victim_deadline) {
            victim = job.get();
            victim_deadline = deadline;
        }
    }
    if (victim == nullptr) return;
    victim->preempt_requested = true;
    victim->requested.store(core::RunAction::Suspend, std::memory_order_relaxed);
}

std::vector<JobManager::Job*> JobManager::dispatch_locked() {
    std::vector<Job*> to_start;
    if (paused_ || stopping_) return to_start;
    while (running_segments_ < opts_.pool_workers &&
           inflight_cost_ < opts_.max_inflight_cost) {
        // Deadline lane first, with strict priority: while an urgent job is
        // blocked on budget, best-effort work must not slip past it.
        Job* job = earliest_deadline_locked();
        if (job != nullptr && !fits_budget_locked(*job)) break;
        if (job == nullptr) job = pick_drr_locked();
        if (job == nullptr) break;
        remove_from_queue_locked(job);
        job->state = JobState::Running;
        job->requested.store(core::RunAction::Continue, std::memory_order_relaxed);
        job->segment_start_ts = job->tsteps_done.load(std::memory_order_relaxed);
        if (!job->dispatched_once) {
            job->dispatched_once = true;
            job->first_dispatch = std::chrono::steady_clock::now();
        }
        if (job->pending_resume) {
            job->pending_resume = false;
            ++stats_.resumes;
        }
        inflight_cost_ += job->cost;
        ++running_segments_;
        stats_.peak_running = std::max<std::int32_t>(stats_.peak_running, running_segments_);
        to_start.push_back(job);
    }
    maybe_preempt_locked();
    return to_start;
}

void JobManager::dispatch_and_run(std::unique_lock<lockdep::Mutex>& lock) {
    const std::vector<Job*> to_start = dispatch_locked();
    if (to_start.empty()) return;
    // The pool may start (and even finish) a segment before we re-lock;
    // the started jobs are fully accounted above, so that is safe.
    lock.unlock();
    for (Job* job : to_start) {
        pool_->submit([this, job] { run_segment(job); }, {}, "serve.segment");
    }
    lock.lock();
}

// ---- segment execution -------------------------------------------------

void JobManager::run_segment(Job* job) {
    core::RunControl control;
    const int slice = opts_.slice_tsteps;
    const int segment_start = job->segment_start_ts;
    control.on_timestep = [this, job, slice, segment_start](int ts,
                                                            int total) -> core::RunAction {
        job->tsteps_done.store(ts, std::memory_order_relaxed);
        if (job->on_event) {
            JobEvent e;
            e.id = job->id;
            e.state = JobState::Running;
            e.ts = ts;
            e.total_ts = total;
            job->on_event(e);
        }
        const core::RunAction req = job->requested.load(std::memory_order_relaxed);
        if (req == core::RunAction::Cancel) return core::RunAction::Cancel;
        if (ts >= total) return core::RunAction::Continue;  // finishing anyway
        if (req == core::RunAction::Suspend) return core::RunAction::Suspend;
        if (slice > 0 && ts - segment_start >= slice) return core::RunAction::Suspend;
        return core::RunAction::Continue;
    };
    control.on_suspend_image = [job](std::vector<std::byte> image) {
        job->image = std::move(image);
    };
    control.on_checkpoint_image = [job](int /*ts*/, std::vector<std::byte> image) {
        job->image = std::move(image);
    };
    if (!job->image.empty()) control.restore_image = &job->image;

    std::unique_ptr<resilience::FaultPlan> faults;
    if (opts_.faults.enabled()) {
        resilience::FaultConfig fc = opts_.faults;
        // Per-job deterministic stream; splitmix-style remix of the id.
        fc.seed = opts_.faults.seed ^ (job->id * 0x9e3779b97f4a7c15ull);
        // A deterministic plan would re-kill the same send forever: crash
        // injection is one-shot per job, disabled on the recovery retry.
        if (job->retries > 0) fc.crash_rank = -1;
        faults = std::make_unique<resilience::FaultPlan>(fc);
    }

    core::RunOptions ropts;
    ropts.ignore_launch_env = true;
    ropts.control = &control;
    try {
        const core::RunResult result =
            core::run_variant(job->cfg, job->spec.variant, nullptr, faults.get(), ropts);
        // The pool threads that hosted this world keep thread-local scratch
        // alive; retire it so the next tenant's segment on the same threads
        // starts from fresh allocations rather than another job's buffers.
        amr::retire_tls_scratch();
        segment_finished(job, result);
    } catch (const std::exception& e) {
        amr::retire_tls_scratch();
        segment_crashed(job, e.what());
    }
}

void JobManager::finish_locked(Job* job, JobState state, std::vector<JobEvent>& events) {
    job->state = state;
    job->image.clear();
    job->image.shrink_to_fit();
    switch (state) {
        case JobState::Done: ++stats_.done; break;
        case JobState::Failed: ++stats_.failed; break;
        case JobState::Cancelled: ++stats_.cancelled; break;
        default: DFAMR_REQUIRE(false, "serve: finish with non-terminal state");
    }
    --non_terminal_;
    emit(events, *job, state);
    job->final_event = events.back();
    cv_.notify_all();
}

void JobManager::segment_finished(Job* job, const core::RunResult& result) {
    std::vector<JobEvent> events;
    JobEventFn fn = job->on_event;
    {
        std::unique_lock<lockdep::Mutex> lock(mutex_);
        --running_segments_;
        inflight_cost_ -= job->cost;
        job->tsteps_done.store(
            result.stop == core::StopKind::None ? job->cfg.num_tsteps : result.stop_ts,
            std::memory_order_relaxed);

        switch (result.stop) {
            case core::StopKind::None: {
                finish_locked(job, JobState::Done, events);
                events.back().checksums = result.checksums;
                job->final_event = events.back();
                break;
            }
            case core::StopKind::Suspended: {
                ++job->suspends;
                ++stats_.suspends;
                if (job->preempt_requested) {
                    ++stats_.preemptions;
                    job->preempt_requested = false;
                }
                job->requested.store(core::RunAction::Continue, std::memory_order_relaxed);
                if (stopping_) {
                    finish_locked(job, JobState::Cancelled, events);
                } else if (job->manual_suspend) {
                    job->state = JobState::Suspended;
                    ++suspended_;
                    emit(events, *job, JobState::Suspended);
                    cv_.notify_all();
                } else {
                    job->state = JobState::Queued;
                    job->pending_resume = true;
                    requeue_front_locked(job);
                    emit(events, *job, JobState::Suspended);
                }
                break;
            }
            case core::StopKind::Cancelled: {
                finish_locked(job, JobState::Cancelled, events);
                break;
            }
        }
        dispatch_and_run(lock);
        cv_.notify_all();
    }
    if (fn) {
        for (const JobEvent& e : events) fn(e);
    }
}

void JobManager::segment_crashed(Job* job, const std::string& what) {
    std::vector<JobEvent> events;
    JobEventFn fn = job->on_event;
    {
        std::unique_lock<lockdep::Mutex> lock(mutex_);
        --running_segments_;
        inflight_cost_ -= job->cost;
        const core::RunAction req = job->requested.load(std::memory_order_relaxed);
        if (stopping_ || req == core::RunAction::Cancel) {
            finish_locked(job, JobState::Cancelled, events);
        } else if (job->retries < opts_.retry_limit) {
            ++job->retries;
            ++stats_.crash_retries;
            // Retry from the latest in-memory image (or from scratch when
            // the crash hit before the first snapshot). The rank threads of
            // the dead world are already joined: run_variant only returns
            // after World::run reaped every rank.
            job->requested.store(core::RunAction::Continue, std::memory_order_relaxed);
            job->manual_suspend = false;
            job->preempt_requested = false;
            job->state = JobState::Queued;
            if (job->image.empty()) job->tsteps_done.store(0, std::memory_order_relaxed);
            requeue_front_locked(job);
        } else {
            finish_locked(job, JobState::Failed, events);
            events.back().error = what;
            job->final_event = events.back();
        }
        dispatch_and_run(lock);
        cv_.notify_all();
    }
    if (fn) {
        for (const JobEvent& e : events) fn(e);
    }
}

}  // namespace dfamr::serve
