// dfamr-serve daemon: accepts DFS1 client connections, feeds Submit frames
// into the JobManager, and streams per-job Progress/Done/Failed frames
// back. One reader thread per connection; writes are serialized by a
// per-connection mutex because job events arrive from pool and rank
// threads concurrently.
//
// Disconnect cleanup: when a client goes away (clean Bye or mid-stream
// EOF/error), every non-terminal job submitted on that connection is
// cancelled and the connection's threads and fds are reclaimed — a flaky
// client must not leak server resources or pool slots.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/lockdep.hpp"
#include "net/socket.hpp"
#include "serve/job_manager.hpp"

namespace dfamr::serve {

struct ServerOptions {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;  // 0 = ephemeral
    JobManagerOptions manager;
};

class Server {
public:
    /// Binds and starts the accept loop.
    explicit Server(const ServerOptions& opts);
    /// stop()s if still running.
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    std::uint16_t port() const { return port_; }
    JobManager& manager() { return *manager_; }

    /// Live manager stats; after stop(), the final snapshot.
    ServerStats stats() const;

    /// Shuts the listener, disconnects every client (cancelling their
    /// jobs), and drains the manager. Idempotent.
    void stop();

private:
    struct Conn {
        std::uint64_t tag = 0;
        net::Socket sock;
        lockdep::Mutex write_mutex{"serve.conn.write"};
        std::atomic<bool> open{true};

        /// Serialized frame write; on a broken pipe the connection is
        /// marked closed and further writes are dropped silently (the
        /// reader thread handles the cleanup).
        void send(FrameKind kind, std::uint64_t job_id,
                  const std::vector<std::byte>& payload);
    };

    void accept_loop();
    void serve_conn(std::shared_ptr<Conn> conn);

    ServerOptions opts_;
    std::unique_ptr<JobManager> manager_;
    ServerStats final_stats_;  // captured by stop() before the manager dies
    net::Socket listener_;
    std::uint16_t port_ = 0;
    std::atomic<bool> stopping_{false};
    std::atomic<std::uint64_t> next_conn_tag_{1};

    lockdep::Mutex conns_mutex_{"serve.conns"};
    std::vector<std::shared_ptr<Conn>> conns_;
    std::vector<std::thread> conn_threads_;  // guarded by conns_mutex_
    std::thread accept_thread_;
};

}  // namespace dfamr::serve
