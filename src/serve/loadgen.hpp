// Open-loop load generator for dfamr-serve. Submits a deterministic job
// mix (tenants × specs cycled round-robin) at a fixed arrival rate over
// one Client connection, then collects every outcome and verifies each
// completed job's checksum history is BIT-IDENTICAL to a solo run of the
// same (scenario, variant, seed, sizes) — the end-to-end proof that
// multi-tenant scheduling, suspend/resume, preemption and crash recovery
// never perturb simulation results.
//
// Solo references are computed up front (one per distinct spec, cached)
// so reference runs do not compete with the load for CPU mid-measurement.
#pragma once

#include <cstdint>
#include <string>

#include "net/socket.hpp"
#include "serve/protocol.hpp"

namespace dfamr::serve {

struct LoadGenOptions {
    /// Minimum jobs to submit; submission continues (cycling the mix)
    /// until both this count and min_duration_s are reached.
    int jobs = 100;
    double min_duration_s = 0;
    /// Open-loop arrival spacing. The rate is NOT throttled by completions:
    /// when the server is slower than the arrival rate the queue grows,
    /// which is exactly what the soak wants to exercise.
    double interarrival_ms = 2.0;
    int tenants = 4;
    /// Distinct (seed, variant) combinations in the mix — bounds the solo
    /// reference cache.
    int distinct_specs = 6;
    /// Template for every job (sizes, scenario); seed/variant/tenant are
    /// derived per job index.
    JobSpec base;
    /// Every Nth job gets a deadline of deadline_s (0 = no deadlines).
    int deadline_every = 0;
    double deadline_s = 30;
    /// Compare every Done job's checksums against the solo reference.
    bool verify = true;
};

struct LoadGenReport {
    int submitted = 0;
    int accepted = 0;
    int rejected = 0;
    int done = 0;
    int failed = 0;           // Failed frames + connection-lost jobs
    int checksum_mismatches = 0;
    int suspended_jobs = 0;   // jobs that went through >= 1 suspend/resume
    int retried_jobs = 0;     // jobs that crash-recovered
    int peak_inflight = 0;    // client-side submitted-not-terminal high water
    double wall_s = 0;
    double jobs_per_s = 0;    // done / wall
    double p50_ms = 0;        // submit → terminal latency percentiles
    double p99_ms = 0;
    ServerStats server;       // final server stats (incl. peak queue depth)

    bool ok() const { return checksum_mismatches == 0 && failed == 0; }
    /// One JSON object (the soak artifact / bench "serving" section).
    std::string to_json() const;
};

LoadGenReport run_loadgen(const net::HostPort& addr, const LoadGenOptions& opts);

/// Process-level leak probes (Linux): open fd count and live thread count
/// of this process, via /proc/self.
int count_open_fds();
int count_threads();

}  // namespace dfamr::serve
