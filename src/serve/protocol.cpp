#include "serve/protocol.hpp"

#include <cstring>

#include "common/bytecodec.hpp"
#include "common/error.hpp"

namespace dfamr::serve {

const char* to_string(FrameKind k) {
    switch (k) {
        case FrameKind::Submit: return "Submit";
        case FrameKind::Cancel: return "Cancel";
        case FrameKind::StatsReq: return "StatsReq";
        case FrameKind::Bye: return "Bye";
        case FrameKind::Accepted: return "Accepted";
        case FrameKind::Rejected: return "Rejected";
        case FrameKind::Progress: return "Progress";
        case FrameKind::Done: return "Done";
        case FrameKind::Failed: return "Failed";
        case FrameKind::Stats: return "Stats";
    }
    return "?";
}

amr::Config job_config(const JobSpec& spec) {
    amr::Config cfg;
    if (spec.scenario == "single_sphere") {
        cfg = amr::single_sphere_input();
    } else if (spec.scenario == "four_spheres") {
        cfg = amr::four_spheres_input();
    } else if (spec.scenario == "gaussian" || spec.scenario == "slotted_cylinder" ||
               spec.scenario == "front") {
        // Problem-generator workloads: field-driven refinement instead of
        // object intersection. Same deterministic knobs as the object
        // scenarios, so the loadgen's solo reference run rebuilds them too.
        cfg = amr::single_sphere_input();
        cfg.objects.clear();
        cfg.scenario = spec.scenario;
        cfg.estimator = "gradient";
        cfg.refine_threshold = 0.1;
        cfg.deref_count = 3;
        cfg.tol = 0.25;  // advective drift headroom (see Config::from_cli)
    } else {
        throw ConfigError("unknown scenario '" + spec.scenario +
                          "' (expected single_sphere, four_spheres, gaussian, "
                          "slotted_cylinder or front)");
    }
    // Scale the canonical inputs down to service-sized jobs. Every knob
    // here is a pure function of the spec: the load generator rebuilds the
    // identical Config for its solo reference run.
    cfg.npx = spec.ranks;
    cfg.npy = 1;
    cfg.npz = 1;
    cfg.nx = cfg.ny = cfg.nz = spec.nx;
    cfg.num_vars = spec.num_vars;
    cfg.comm_vars = 4;
    cfg.num_tsteps = spec.num_tsteps;
    cfg.stages_per_ts = 6;
    cfg.checksum_freq = 3;
    cfg.num_refine = spec.num_refine;
    cfg.refine_freq = 2;
    cfg.workers = spec.workers;
    cfg.seed = spec.seed;
    cfg.checkpoint_every = 0;  // serve snapshots via RunControl, not files
    cfg.validate();
    return cfg;
}

void encode_job_spec(const JobSpec& spec, std::vector<std::byte>& out) {
    bytes::Writer w;
    w.str(spec.tenant);
    w.str(spec.scenario);
    w.u32(static_cast<std::uint32_t>(spec.variant));
    w.u64(spec.seed);
    w.i32(spec.ranks);
    w.i32(spec.workers);
    w.i32(spec.nx);
    w.i32(spec.num_vars);
    w.i32(spec.num_tsteps);
    w.i32(spec.num_refine);
    w.i32(spec.weight);
    w.f64(spec.deadline_s);
    out = std::move(w.bytes);
}

JobSpec decode_job_spec(const std::byte* data, std::size_t size) {
    bytes::Reader r(data, size);
    JobSpec spec;
    spec.tenant = r.str();
    spec.scenario = r.str();
    const std::uint32_t v = r.u32();
    DFAMR_REQUIRE(v <= static_cast<std::uint32_t>(amr::Variant::TampiOss),
                  "serve: bad variant in job spec");
    spec.variant = static_cast<amr::Variant>(v);
    spec.seed = r.u64();
    spec.ranks = r.i32();
    spec.workers = r.i32();
    spec.nx = r.i32();
    spec.num_vars = r.i32();
    spec.num_tsteps = r.i32();
    spec.num_refine = r.i32();
    spec.weight = r.i32();
    spec.deadline_s = r.f64();
    return spec;
}

void encode_job_done(const JobDone& d, std::vector<std::byte>& out) {
    bytes::Writer w;
    w.u32(static_cast<std::uint32_t>(d.checksums.size()));
    for (double c : d.checksums) w.f64(c);
    w.f64(d.elapsed_s);
    w.i32(d.suspends);
    w.i32(d.retries);
    out = std::move(w.bytes);
}

JobDone decode_job_done(const std::byte* data, std::size_t size) {
    bytes::Reader r(data, size);
    JobDone d;
    const std::uint32_t n = r.u32();
    d.checksums.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) d.checksums.push_back(r.f64());
    d.elapsed_s = r.f64();
    d.suspends = r.i32();
    d.retries = r.i32();
    return d;
}

void encode_job_progress(const JobProgress& p, std::vector<std::byte>& out) {
    bytes::Writer w;
    w.i32(p.ts);
    w.i32(p.total_ts);
    out = std::move(w.bytes);
}

JobProgress decode_job_progress(const std::byte* data, std::size_t size) {
    bytes::Reader r(data, size);
    JobProgress p;
    p.ts = r.i32();
    p.total_ts = r.i32();
    return p;
}

void encode_server_stats(const ServerStats& s, std::vector<std::byte>& out) {
    bytes::Writer w;
    w.u64(s.submitted);
    w.u64(s.accepted);
    w.u64(s.rejected);
    w.u64(s.done);
    w.u64(s.failed);
    w.u64(s.cancelled);
    w.u64(s.suspends);
    w.u64(s.resumes);
    w.u64(s.preemptions);
    w.u64(s.crash_retries);
    w.i32(s.queued);
    w.i32(s.running);
    w.i32(s.suspended);
    w.i32(s.inflight_cost);
    w.i32(s.peak_queue);
    w.i32(s.peak_running);
    out = std::move(w.bytes);
}

ServerStats decode_server_stats(const std::byte* data, std::size_t size) {
    bytes::Reader r(data, size);
    ServerStats s;
    s.submitted = r.u64();
    s.accepted = r.u64();
    s.rejected = r.u64();
    s.done = r.u64();
    s.failed = r.u64();
    s.cancelled = r.u64();
    s.suspends = r.u64();
    s.resumes = r.u64();
    s.preemptions = r.u64();
    s.crash_retries = r.u64();
    s.queued = r.i32();
    s.running = r.i32();
    s.suspended = r.i32();
    s.inflight_cost = r.i32();
    s.peak_queue = r.i32();
    s.peak_running = r.i32();
    return s;
}

bool read_frame(const net::Socket& sock, FrameHeader& header,
                std::vector<std::byte>& payload) {
    std::byte raw[sizeof(FrameHeader)];
    if (!net::read_exactly(sock, raw)) return false;
    std::memcpy(&header, raw, sizeof header);
    DFAMR_REQUIRE(header.magic == kServeMagic, "serve: bad frame magic");
    DFAMR_REQUIRE(header.payload_bytes <= kMaxPayload, "serve: oversized frame payload");
    payload.resize(static_cast<std::size_t>(header.payload_bytes));
    if (!payload.empty()) {
        DFAMR_REQUIRE(net::read_exactly(sock, payload),
                      "serve: connection closed mid-frame");
    }
    return true;
}

void write_frame(const net::Socket& sock, FrameKind kind, std::uint64_t job_id,
                 const std::vector<std::byte>& payload) {
    FrameHeader header;
    header.kind = static_cast<std::uint32_t>(kind);
    header.job_id = job_id;
    header.payload_bytes = payload.size();
    std::vector<std::byte> buf(sizeof header + payload.size());
    std::memcpy(buf.data(), &header, sizeof header);
    if (!payload.empty()) {
        std::memcpy(buf.data() + sizeof header, payload.data(), payload.size());
    }
    net::write_all(sock, buf);
}

std::vector<std::byte> encode_string(const std::string& s) {
    bytes::Writer w;
    w.str(s);
    return std::move(w.bytes);
}

std::string decode_string(const std::byte* data, std::size_t size) {
    bytes::Reader r(data, size);
    return r.str();
}

}  // namespace dfamr::serve
